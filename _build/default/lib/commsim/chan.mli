(** A bidirectional channel to one fixed peer.

    Protocol implementations are written against this record so the same
    code runs standalone between two parties ({!Two_party.run}) and embedded
    inside an m-player execution (a pair of {!Network} endpoints). *)

type t = { send : Bitio.Bits.t -> unit; recv : unit -> Bitio.Bits.t }

(** [of_endpoint ep ~peer] views the network endpoint [ep] as a channel to
    player [peer]. *)
val of_endpoint : Network.endpoint -> peer:int -> t

(** [loopback ()] is a pair of channels plumbed back to back with a
    same-thread queue; useful in unit tests of message-level codecs.  No
    cost accounting, and [recv] on an empty queue raises [Failure]. *)
val loopback : unit -> t * t

(** [tamper ?flip_bit ?drop_nth chan] wraps a channel with fault injection
    for robustness tests: [flip_bit (message_index, payload_length)]
    returns the bit to corrupt in that outgoing message (or [None]);
    [drop_nth] silently discards that outgoing message (0-based).
    Incoming traffic is untouched. *)
val tamper :
  ?flip_bit:(int -> int -> int option) -> ?drop_nth:int -> t -> t
