lib/commsim/cost.ml: Array Format
