lib/commsim/multiplex.mli: Chan Network
