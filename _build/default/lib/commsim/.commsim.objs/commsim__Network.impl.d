lib/commsim/network.ml: Array Bitio Cost Effect List Printf Queue
