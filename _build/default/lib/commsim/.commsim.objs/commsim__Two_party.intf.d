lib/commsim/two_party.mli: Chan Cost
