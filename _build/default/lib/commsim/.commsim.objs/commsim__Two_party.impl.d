lib/commsim/two_party.ml: Chan Network
