lib/commsim/multiplex.ml: Array Bitio Chan Effect Hashtbl List Network Queue
