lib/commsim/chan.ml: Bitio List Network Queue
