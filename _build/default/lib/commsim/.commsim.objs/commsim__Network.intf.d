lib/commsim/network.mli: Bitio Cost
