lib/commsim/cost.mli: Format
