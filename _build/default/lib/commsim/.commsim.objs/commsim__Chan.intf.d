lib/commsim/chan.mli: Bitio Network
