let run ~alice ~bob =
  let result_a = ref None and result_b = ref None in
  let players =
    [|
      (fun ep -> result_a := Some (alice (Chan.of_endpoint ep ~peer:1)));
      (fun ep -> result_b := Some (bob (Chan.of_endpoint ep ~peer:0)));
    |]
  in
  let (_ : unit array), cost = Network.run players in
  match (!result_a, !result_b) with
  | Some a, Some b -> ((a, b), cost)
  | _ -> assert false
