(** Two-party executions: the standard Yao model, with Alice as player 0 and
    Bob as player 1. *)

(** [run ~alice ~bob] runs both parties to completion and returns their
    results together with the execution cost.  Each party sees only its
    channel; scheduling, metering and round accounting are inherited from
    {!Network}. *)
val run : alice:(Chan.t -> 'a) -> bob:(Chan.t -> 'b) -> ('a * 'b) * Cost.t
