open Effect
open Effect.Deep

type payload = Bitio.Bits.t

type _ Effect.t +=
  | Send_eff : int * payload -> unit Effect.t
  | Recv_eff : int -> payload Effect.t
  | Recv_any_eff : (int * payload) Effect.t

type status =
  | Runnable
  | Blocked of (payload, unit) continuation * int (* waiting for this sender *)
  | Blocked_any of (int * payload, unit) continuation
  | Finished

type player_state = {
  rank : int;
  size : int;
  inboxes : (payload * int) Queue.t array; (* (payload, depth), indexed by sender *)
  mutable clock : int;
  mutable status : status;
  mutable sent_bits : int;
  mutable received_bits : int;
  mutable sent_messages : int;
}

type endpoint = player_state

let rank ep = ep.rank
let size ep = ep.size

let send ep ~to_ payload =
  if to_ < 0 || to_ >= ep.size then invalid_arg "Network.send: rank out of range";
  if to_ = ep.rank then invalid_arg "Network.send: self-send";
  perform (Send_eff (to_, payload))

let recv ep ~from_ =
  if from_ < 0 || from_ >= ep.size then invalid_arg "Network.recv: rank out of range";
  if from_ = ep.rank then invalid_arg "Network.recv: self-recv";
  perform (Recv_eff from_)

let recv_any _ep = perform Recv_any_eff

exception Deadlock of string

type trace_entry = { from_ : int; to_ : int; bits : int; depth : int }

let run_with ~trace players =
  let m = Array.length players in
  if m < 2 then invalid_arg "Network.run: need at least two players";
  let states =
    Array.init m (fun rank ->
        {
          rank;
          size = m;
          inboxes = Array.init m (fun _ -> Queue.create ());
          clock = 0;
          status = Runnable;
          sent_bits = 0;
          received_bits = 0;
          sent_messages = 0;
        })
  in
  let results = Array.make m None in
  let runnable : (unit -> unit) Queue.t = Queue.create () in
  let rounds = ref 0 and total_bits = ref 0 and messages = ref 0 in
  let entries = ref [] in
  let consume st from_ =
    let payload, depth = Queue.pop st.inboxes.(from_) in
    st.clock <- max st.clock depth;
    st.received_bits <- st.received_bits + Bitio.Bits.length payload;
    payload
  in
  let first_nonempty_inbox st =
    let rec scan from_ =
      if from_ >= m then None
      else if not (Queue.is_empty st.inboxes.(from_)) then Some from_
      else scan (from_ + 1)
    in
    scan 0
  in
  (* Wake-ups can go stale (two sends queue two wakes but the first one lets
     the player move on), so a wake re-checks the condition before resuming. *)
  let try_resume st =
    match st.status with
    | Blocked (k, from_) when not (Queue.is_empty st.inboxes.(from_)) ->
        st.status <- Runnable;
        continue k (consume st from_)
    | Blocked_any k -> begin
        match first_nonempty_inbox st with
        | Some from_ ->
            st.status <- Runnable;
            continue k (from_, consume st from_)
        | None -> ()
      end
    | Blocked _ | Runnable | Finished -> ()
  in
  let start st rank () =
    match_with (players.(rank)) st
      {
        retc =
          (fun r ->
            results.(rank) <- Some r;
            st.status <- Finished);
        exnc = raise;
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Send_eff (to_, payload) ->
                Some
                  (fun (k : (c, unit) continuation) ->
                    let depth = st.clock + 1 in
                    let len = Bitio.Bits.length payload in
                    rounds := max !rounds depth;
                    total_bits := !total_bits + len;
                    incr messages;
                    if trace then entries := { from_ = st.rank; to_; bits = len; depth } :: !entries;
                    st.sent_bits <- st.sent_bits + len;
                    st.sent_messages <- st.sent_messages + 1;
                    let peer = states.(to_) in
                    Queue.add (payload, depth) peer.inboxes.(st.rank);
                    (match peer.status with
                    | Blocked (_, from_) when from_ = st.rank ->
                        Queue.add (fun () -> try_resume peer) runnable
                    | Blocked_any _ -> Queue.add (fun () -> try_resume peer) runnable
                    | Blocked _ | Runnable | Finished -> ());
                    continue k ())
            | Recv_eff from_ ->
                Some
                  (fun (k : (c, unit) continuation) ->
                    if Queue.is_empty st.inboxes.(from_) then st.status <- Blocked (k, from_)
                    else continue k (consume st from_))
            | Recv_any_eff ->
                Some
                  (fun (k : (c, unit) continuation) ->
                    match first_nonempty_inbox st with
                    | Some from_ -> continue k (from_, consume st from_)
                    | None -> st.status <- Blocked_any k)
            | _ -> None);
      }
  in
  Array.iteri (fun rank st -> Queue.add (start st rank) runnable) states;
  let rec schedule () =
    match Queue.take_opt runnable with
    | Some thunk ->
        thunk ();
        schedule ()
    | None -> ()
  in
  schedule ();
  Array.iter
    (fun st ->
      match st.status with
      | Finished -> ()
      | Blocked (_, from_) ->
          raise
            (Deadlock
               (Printf.sprintf "player %d waits for a message from player %d that never comes"
                  st.rank from_))
      | Blocked_any _ ->
          raise (Deadlock (Printf.sprintf "player %d waits for a message that never comes" st.rank))
      | Runnable -> raise (Deadlock (Printf.sprintf "player %d runnable but never scheduled" st.rank)))
    states;
  let players_cost =
    Array.map
      (fun st ->
        {
          Cost.sent_bits = st.sent_bits;
          received_bits = st.received_bits;
          sent_messages = st.sent_messages;
        })
      states
  in
  let results =
    Array.map (function Some r -> r | None -> assert false (* Finished implies stored *)) results
  in
  ( results,
    { Cost.players = players_cost; total_bits = !total_bits; messages = !messages; rounds = !rounds },
    List.rev !entries )

let run players =
  let results, cost, _ = run_with ~trace:false players in
  (results, cost)

let run_traced players = run_with ~trace:true players
