type t = { p : int64; a : int64; b : int64; range : int; seed_bits : int }

let create rng ~universe ~range =
  if universe < 1 || range < 1 then invalid_arg "Carter_wegman.create";
  let p = Prime.next_prime (max universe 2) in
  let a = 1 + Prng.Rng.int rng (p - 1) in
  let b = Prng.Rng.int rng p in
  {
    p = Int64.of_int p;
    a = Int64.of_int a;
    b = Int64.of_int b;
    range;
    seed_bits = 2 * Bitio.Codes.bit_width p;
  }

let hash t x =
  if x < 0 then invalid_arg "Carter_wegman.hash: negative";
  let v = Modarith.addmod (Modarith.mulmod t.a (Int64.of_int x) t.p) t.b t.p in
  Int64.to_int (Int64.unsigned_rem v (Int64.of_int t.range))

let range t = t.range
let seed_bits t = t.seed_bits
let modulus t = Int64.to_int t.p
