(** FKS universe reduction (Fredman–Komlós–Szemerédi, JACM 1984).

    Mapping [x -> x mod q] for a uniformly random prime [q <= t] with
    [t = Θ(k² log n / δ)] is collision-free on any fixed set of [k] elements
    of [\[0, n)] with probability at least [1 - δ].  The paper (§3.1) uses
    this to shrink [O(log n)]-bit elements to [O(log k + log log n)] bits so
    the pairwise-independent hash that follows needs only
    [O(log k + log log n)] random bits. *)

type t

(** [create rng ~universe ~set_size ~failure] draws a random prime for sets
    of at most [set_size] elements with collision probability at most
    [failure]. *)
val create : Prng.Rng.t -> universe:int -> set_size:int -> failure:float -> t

val hash : t -> int -> int

(** The chosen prime [q]; hashes land in [\[0, q)]. *)
val modulus : t -> int

(** Bits to transmit [q] in band (private-randomness accounting). *)
val seed_bits : t -> int

(** The bound [t] below which the prime was sampled (exposed for tests). *)
val prime_bound : universe:int -> set_size:int -> failure:float -> int
