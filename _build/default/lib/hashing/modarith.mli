(** Overflow-safe modular arithmetic on 64-bit values, treated as unsigned.

    Needed because Carter–Wegman hashing over a prime field multiplies two
    values close to the prime, which overflows native 64-bit products for
    universes beyond 2^31. *)

(** [addmod a b m] is [(a + b) mod m] for unsigned [a, b < m]. *)
val addmod : int64 -> int64 -> int64 -> int64

(** [mulmod a b m] is [(a * b) mod m] for unsigned [a, b < m].  Uses a direct
    product when safe and shift-and-add otherwise. *)
val mulmod : int64 -> int64 -> int64 -> int64

(** [powmod b e m] is [b^e mod m] for unsigned [b < m], [e >= 0]. *)
val powmod : int64 -> int64 -> int64 -> int64
