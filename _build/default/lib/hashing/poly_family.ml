type t = { p : int64; coefficients : int64 array; range : int }

let create rng ~universe ~range ~independence =
  if universe < 1 || range < 1 then invalid_arg "Poly_family.create";
  if independence < 1 then invalid_arg "Poly_family.create: independence";
  let p = Prime.next_prime (max universe 2) in
  let coefficients =
    Array.init independence (fun i ->
        (* leading coefficient nonzero so the degree is exact *)
        let lo = if i = independence - 1 && independence > 1 then 1 else 0 in
        Int64.of_int (lo + Prng.Rng.int rng (p - lo)))
  in
  { p = Int64.of_int p; coefficients; range }

(* Horner evaluation with overflow-safe modular steps. *)
let hash t x =
  if x < 0 then invalid_arg "Poly_family.hash: negative";
  let x64 = Int64.of_int x in
  let acc = ref 0L in
  for i = Array.length t.coefficients - 1 downto 0 do
    acc := Modarith.addmod (Modarith.mulmod !acc x64 t.p) t.coefficients.(i) t.p
  done;
  Int64.to_int (Int64.unsigned_rem !acc (Int64.of_int t.range))

let range t = t.range

let independence t = Array.length t.coefficients

let seed_bits t =
  Array.length t.coefficients * Bitio.Codes.bit_width (Int64.to_int t.p)
