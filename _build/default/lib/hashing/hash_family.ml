module type S = sig
  type t

  val create : Prng.Rng.t -> universe:int -> range:int -> t
  val hash : t -> int -> int
  val range : t -> int
  val seed_bits : t -> int
end

let bucket_counts ~hash s =
  let table = Hashtbl.create (Array.length s) in
  Array.iter
    (fun x ->
      let h = hash x in
      Hashtbl.replace table h (1 + Option.value ~default:0 (Hashtbl.find_opt table h)))
    s;
  table

let has_collision ~hash s =
  let table = bucket_counts ~hash s in
  Hashtbl.fold (fun _ count acc -> acc || count > 1) table false

let colliding_pairs ~hash s =
  let table = bucket_counts ~hash s in
  Hashtbl.fold (fun _ count acc -> acc + (count * (count - 1) / 2)) table 0
