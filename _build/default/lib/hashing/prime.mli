(** Primality testing and prime search for the hash-function constructions
    (Fact 2.2 and the FKS universe reduction). *)

(** Deterministic Miller–Rabin, exact for all [0 <= n < 2^62]. *)
val is_prime : int -> bool

(** [next_prime n] is the smallest prime [>= n].  [n] must be at least 2 and
    small enough that the result stays below [2^62]. *)
val next_prime : int -> int

(** [random_prime rng ~below] is a uniformly random prime in [\[2, below)];
    [below > 2] and there must be at least one such prime.  Sampling is by
    rejection, so the distribution is exactly uniform over qualifying
    primes. *)
val random_prime : Prng.Rng.t -> below:int -> int
