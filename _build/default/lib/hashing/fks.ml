type t = { q : int; bound : int }

let log2 x = log x /. log 2.0

(* A collision [x = y mod q] means q divides |x - y| < n; each of the
   <= k^2/2 differences has at most log2 n prime divisors.  With pi(t) >=
   t / ln t primes available (valid for t >= 17), choosing
   t >= (k^2 * log2 n / (2 delta)) * ln t makes the bad fraction <= delta.
   We solve the implicit bound by fixed-point iteration. *)
let prime_bound ~universe ~set_size ~failure =
  if universe < 2 || set_size < 1 then invalid_arg "Fks.prime_bound";
  if failure <= 0.0 || failure >= 1.0 then invalid_arg "Fks.prime_bound: failure";
  let k = float_of_int set_size in
  let m = k *. k *. log2 (float_of_int universe) /. (2.0 *. failure) in
  let t = ref (max 17.0 (2.0 *. m)) in
  for _ = 1 to 20 do
    t := max 17.0 (m *. log !t)
  done;
  let b = int_of_float (ceil !t) in
  max 17 b

let create rng ~universe ~set_size ~failure =
  let bound = prime_bound ~universe ~set_size ~failure in
  let q = Prime.random_prime rng ~below:(bound + 1) in
  { q; bound }

let hash t x =
  if x < 0 then invalid_arg "Fks.hash: negative";
  x mod t.q

let modulus t = t.q
let seed_bits t = Bitio.Codes.bit_width t.bound
