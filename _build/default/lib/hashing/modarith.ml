let ( <^ ) a b = Int64.unsigned_compare a b < 0
let ( >=^ ) a b = Int64.unsigned_compare a b >= 0

let addmod a b m =
  let s = Int64.add a b in
  (* Wrapped around 2^64, or simply reached m: subtract once. *)
  if s <^ a || s >=^ m then Int64.sub s m else s

let direct_threshold = 0xFFFFFFFFL (* products of values below 2^32 fit. *)

let mulmod a b m =
  if a <^ direct_threshold && b <^ direct_threshold then Int64.unsigned_rem (Int64.mul a b) m
  else begin
    let result = ref 0L in
    let a = ref (Int64.unsigned_rem a m) in
    let b = ref b in
    while !b <> 0L do
      if Int64.logand !b 1L = 1L then result := addmod !result !a m;
      a := addmod !a !a m;
      b := Int64.shift_right_logical !b 1
    done;
    !result
  end

let powmod b e m =
  let result = ref 1L in
  let b = ref (Int64.unsigned_rem b m) in
  let e = ref e in
  while !e <> 0L do
    if Int64.logand !e 1L = 1L then result := mulmod !result !b m;
    b := mulmod !b !b m;
    e := Int64.shift_right_logical !e 1
  done;
  !result
