(** Common interface for the hash-function families of Fact 2.2, plus
    collision diagnostics used by tests and ablations. *)

module type S = sig
  type t

  (** [create rng ~universe ~range] draws a random function
      [\[0, universe) -> \[0, range)] from the family. *)
  val create : Prng.Rng.t -> universe:int -> range:int -> t

  val hash : t -> int -> int
  val range : t -> int

  (** Number of random bits needed to describe the drawn function — the
      in-band cost of shipping it in the private-randomness model. *)
  val seed_bits : t -> int
end

(** [has_collision ~hash s] checks whether any two distinct elements of [s]
    (given as a set, i.e. distinct values) collide under [hash]. *)
val has_collision : hash:(int -> int) -> int array -> bool

(** [colliding_pairs ~hash s] counts unordered colliding pairs. *)
val colliding_pairs : hash:(int -> int) -> int array -> int
