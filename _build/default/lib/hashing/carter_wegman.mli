(** Pairwise-independent hashing [h(x) = ((a*x + b) mod p) mod range] over a
    prime field [p >= universe] — the explicit [O(log n)]-random-bit family
    behind Fact 2.2. *)

include Hash_family.S

(** The prime modulus actually chosen. *)
val modulus : t -> int
