(** Simple tabulation hashing (Zobrist): one random 64-bit table per input
    byte, XORed together.  3-independent; used in robustness ablations as a
    stronger-than-pairwise alternative. *)

include Hash_family.S
