type t = { a : int64; shift : int; range : int }

let create rng ~universe ~range =
  if universe < 1 || range < 1 then invalid_arg "Multiply_shift.create";
  let a = Int64.logor (Prng.Rng.int64 rng) 1L in
  let width = if range <= 2 then 1 else Bitio.Codes.bit_width (range - 1) in
  { a; shift = 64 - width; range }

let hash t x =
  if x < 0 then invalid_arg "Multiply_shift.hash: negative";
  let v = Int64.to_int (Int64.shift_right_logical (Int64.mul t.a (Int64.of_int x)) t.shift) in
  v mod t.range

let range t = t.range
let seed_bits _ = 64
