(** Degree-(d-1) polynomial hashing over a prime field: the classic
    d-independent family (Wegman–Carter).  Pairwise independence ([d = 2])
    is all the paper's protocols need; higher independence is exposed for
    the robustness ablations (bucket-load tails sharpen with d). *)

type t

(** [create rng ~universe ~range ~independence] draws a random polynomial
    of degree [independence - 1]; [independence >= 1]. *)
val create : Prng.Rng.t -> universe:int -> range:int -> independence:int -> t

val hash : t -> int -> int
val range : t -> int
val independence : t -> int

(** Random bits consumed: [independence] coefficients of [log p] bits. *)
val seed_bits : t -> int
