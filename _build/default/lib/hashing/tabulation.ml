type t = { tables : int64 array array; range : int }

let create rng ~universe ~range =
  if universe < 1 || range < 1 then invalid_arg "Tabulation.create";
  let tables = Array.init 8 (fun _ -> Array.init 256 (fun _ -> Prng.Rng.int64 rng)) in
  { tables; range }

let hash t x =
  if x < 0 then invalid_arg "Tabulation.hash: negative";
  let acc = ref 0L in
  for byte = 0 to 7 do
    let idx = (x lsr (8 * byte)) land 0xFF in
    acc := Int64.logxor !acc t.tables.(byte).(idx)
  done;
  Int64.to_int (Int64.unsigned_rem !acc (Int64.of_int t.range))

let range t = t.range
let seed_bits _ = 8 * 256 * 64
