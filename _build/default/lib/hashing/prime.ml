(* Deterministic Miller-Rabin: this base set is exact for n < 3.3 * 10^24,
   far beyond our 62-bit inputs (Sorenson & Webster). *)
let witnesses = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ]

let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else begin
    let n64 = Int64.of_int n in
    let d = ref (n - 1) and s = ref 0 in
    while !d mod 2 = 0 do
      d := !d / 2;
      incr s
    done;
    let strong_probable_prime a =
      let a = a mod n in
      if a = 0 then true
      else begin
        let x = ref (Modarith.powmod (Int64.of_int a) (Int64.of_int !d) n64) in
        if !x = 1L || !x = Int64.of_int (n - 1) then true
        else begin
          let witness_found = ref false in
          let r = ref 1 in
          while (not !witness_found) && !r < !s do
            x := Modarith.mulmod !x !x n64;
            if !x = Int64.of_int (n - 1) then witness_found := true;
            incr r
          done;
          !witness_found
        end
      end
    in
    List.for_all strong_probable_prime witnesses
  end

let next_prime n =
  if n < 2 then invalid_arg "Prime.next_prime";
  let rec search n = if is_prime n then n else search (n + 1) in
  search n

let random_prime rng ~below =
  if below <= 2 then invalid_arg "Prime.random_prime";
  let rec draw () =
    let candidate = 2 + Prng.Rng.int rng (below - 2) in
    if is_prime candidate then candidate else draw ()
  in
  draw ()
