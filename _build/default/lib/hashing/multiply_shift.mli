(** Dietzfelbinger-style multiply-shift hashing: a random odd 64-bit
    multiplier followed by a shift.  Universal onto power-of-two ranges and
    very fast; non-power-of-two ranges are folded by a final reduction. *)

include Hash_family.S
