lib/hashing/poly_family.mli: Prng
