lib/hashing/modarith.mli:
