lib/hashing/tabulation.mli: Hash_family
