lib/hashing/hash_family.ml: Array Hashtbl Option Prng
