lib/hashing/prime.ml: Int64 List Modarith Prng
