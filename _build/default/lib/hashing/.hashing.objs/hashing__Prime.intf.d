lib/hashing/prime.mli: Prng
