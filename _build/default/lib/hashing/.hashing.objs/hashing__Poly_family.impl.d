lib/hashing/poly_family.ml: Array Bitio Int64 Modarith Prime Prng
