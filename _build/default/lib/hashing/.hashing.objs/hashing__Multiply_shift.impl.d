lib/hashing/multiply_shift.ml: Bitio Int64 Prng
