lib/hashing/multiply_shift.mli: Hash_family
