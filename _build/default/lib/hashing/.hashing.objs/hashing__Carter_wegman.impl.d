lib/hashing/carter_wegman.ml: Bitio Int64 Modarith Prime Prng
