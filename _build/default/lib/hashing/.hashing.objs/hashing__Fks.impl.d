lib/hashing/fks.ml: Bitio Prime
