lib/hashing/fks.mli: Prng
