lib/hashing/modarith.ml: Int64
