lib/hashing/hash_family.mli: Prng
