lib/hashing/carter_wegman.mli: Hash_family
