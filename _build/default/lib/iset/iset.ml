type t = int array

let empty = [||]

let of_list l = Array.of_list (List.sort_uniq compare l)

let of_array a = of_list (Array.to_list a)

let is_valid a =
  let n = Array.length a in
  let rec loop i = i >= n || (a.(i - 1) < a.(i) && loop (i + 1)) in
  loop 1

let cardinal = Array.length

let mem a x =
  let rec search lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true else if a.(mid) < x then search (mid + 1) hi else search lo mid
    end
  in
  search 0 (Array.length a)

let equal a b = a = b

(* Generic sorted merge; [keep] decides membership in the result from
   (in_a, in_b). *)
let merge keep a b =
  let out = ref [] in
  let push x = out := x :: !out in
  let i = ref 0 and j = ref 0 in
  let la = Array.length a and lb = Array.length b in
  while !i < la || !j < lb do
    if !i >= la then begin
      if keep false true then push b.(!j);
      incr j
    end
    else if !j >= lb then begin
      if keep true false then push a.(!i);
      incr i
    end
    else if a.(!i) = b.(!j) then begin
      if keep true true then push a.(!i);
      incr i;
      incr j
    end
    else if a.(!i) < b.(!j) then begin
      if keep true false then push a.(!i);
      incr i
    end
    else begin
      if keep false true then push b.(!j);
      incr j
    end
  done;
  Array.of_list (List.rev !out)

let inter a b = merge (fun in_a in_b -> in_a && in_b) a b
let union a b = merge (fun in_a in_b -> in_a || in_b) a b
let diff a b = merge (fun in_a in_b -> in_a && not in_b) a b

let subset a b = Array.length (diff a b) = 0

let filter p a = Array.of_list (List.filter p (Array.to_list a))

let partition_by f ~bins a =
  let acc = Array.make bins [] in
  Array.iter
    (fun x ->
      let b = f x in
      if b < 0 || b >= bins then invalid_arg "Iset.partition_by: key out of range";
      acc.(b) <- x :: acc.(b))
    a;
  (* input is sorted, so each reversed bin is sorted *)
  Array.map (fun bin -> Array.of_list (List.rev bin)) acc

let inter_many = function
  | [] -> invalid_arg "Iset.inter_many: empty list"
  | first :: rest -> List.fold_left inter first rest

let union_many sets = List.fold_left union empty sets

let pp ppf a =
  Format.fprintf ppf "{";
  Array.iteri (fun i x -> Format.fprintf ppf (if i = 0 then "%d" else ",%d") x) a;
  Format.fprintf ppf "}"
