(** Sorted integer sets, represented as strictly increasing [int array]s.

    This is the on-the-wire and in-protocol representation of every set in
    the library: canonical (so equality of sets is equality of arrays),
    cheap to merge, and cheap to encode with {!Bitio.Set_codec}. *)

type t = int array

val empty : t

(** [of_list l] sorts and deduplicates. *)
val of_list : int list -> t

(** [of_array a] sorts and deduplicates a copy. *)
val of_array : int array -> t

val is_valid : t -> bool
val cardinal : t -> int
val mem : t -> int -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

(** [filter p s] keeps order. *)
val filter : (int -> bool) -> t -> t

(** [partition_by f ~bins s] splits [s] into [bins] sets by key
    [f x ∈ \[0, bins)]; each bin stays sorted. *)
val partition_by : (int -> int) -> bins:int -> t -> t array

(** Intersection of a non-empty list of sets. *)
val inter_many : t list -> t

(** Union of any list of sets. *)
val union_many : t list -> t

val pp : Format.formatter -> t -> unit
