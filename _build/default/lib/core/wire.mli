(** Small helpers for assembling protocol messages. *)

(** Canonical bit-string encoding of a set (gap code); equal sets have equal
    encodings and vice versa — the representation equality tests run on. *)
val of_set : Iset.t -> Bitio.Bits.t

(** Canonical encoding of an ordered list of sets (e.g. the leaf assignments
    under a tree node, in leaf order). *)
val of_sets : Iset.t list -> Bitio.Bits.t

(** One-value messages. *)
val gamma_msg : int -> Bitio.Bits.t

val read_gamma_msg : Bitio.Bits.t -> int
val bit_msg : bool -> Bitio.Bits.t
val read_bit_msg : Bitio.Bits.t -> bool

(** Bitmap messages of a fixed, mutually known width. *)
val bitmap_msg : bool array -> Bitio.Bits.t

val read_bitmap_msg : Bitio.Bits.t -> width:int -> bool array
