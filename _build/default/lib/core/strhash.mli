(** Shared-randomness hash tags of arbitrary width.

    A [fn] is a random function producing [bits]-bit tags, built from
    independent affine "lanes" over the Mersenne prime [p = 2^61 - 1]
    (strings are first collapsed by a polynomial fingerprint over [p]).
    Guarantees, for inputs [x <> y]:

    - tags of equal inputs are always equal (one-sided);
    - tags collide with probability at most
      [2^-bits + length / 2^61 + 2^(bits mod 48 ... )] — within a small
      constant factor of the ideal [2^-bits], which is all Fact 3.5 and
      Lemma 3.3 need.

    Both parties construct the same [fn] by passing {!Prng.Rng.t} values in
    identical states (e.g. [Rng.with_label shared "stage3/node17"]); [create]
    consumes from the generator. *)

type fn

(** [create rng ~bits] draws a tag function.  [bits >= 1]; any width is
    supported (wide tags use several lanes). *)
val create : Prng.Rng.t -> bits:int -> fn

val bits : fn -> int

(** Tag of a bit string. *)
val apply : fn -> Bitio.Bits.t -> Bitio.Bits.t

(** Tag of an integer in [\[0, 2^60)]. *)
val apply_int : fn -> int -> Bitio.Bits.t

(** One-shot conveniences (draw the function and apply it). *)
val tag : Prng.Rng.t -> bits:int -> Bitio.Bits.t -> Bitio.Bits.t

val tag_int : Prng.Rng.t -> bits:int -> int -> Bitio.Bits.t
