type outcome = { alice : Iset.t; bob : Iset.t; cost : Commsim.Cost.t }

type t = {
  name : string;
  sandwich : bool;
  run : Prng.Rng.t -> universe:int -> Iset.t -> Iset.t -> outcome;
}

let agreed outcome = Iset.equal outcome.alice outcome.bob

let exact outcome ~s ~t =
  let expected = Iset.inter s t in
  Iset.equal outcome.alice expected && Iset.equal outcome.bob expected

let sandwich_holds outcome ~s ~t =
  let expected = Iset.inter s t in
  Iset.subset expected outcome.alice
  && Iset.subset outcome.alice s
  && Iset.subset expected outcome.bob
  && Iset.subset outcome.bob t

let validate_inputs ~universe s t =
  let check_one name set =
    if not (Iset.is_valid set) then invalid_arg ("Protocol: " ^ name ^ " is not a sorted set");
    if Array.length set > 0 && (set.(0) < 0 || set.(Array.length set - 1) >= universe) then
      invalid_arg ("Protocol: " ^ name ^ " outside universe")
  in
  check_one "S" s;
  check_one "T" t;
  if universe < 1 || universe > 1 lsl 60 then invalid_arg "Protocol: universe out of range"
