lib/core/vtree.ml: Array Iterated_log List
