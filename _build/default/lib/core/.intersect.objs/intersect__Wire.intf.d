lib/core/wire.mli: Bitio Iset
