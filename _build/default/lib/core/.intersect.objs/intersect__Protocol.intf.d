lib/core/protocol.mli: Commsim Iset Prng
