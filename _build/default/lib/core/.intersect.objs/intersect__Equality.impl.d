lib/core/equality.ml: Bitio Commsim Prng Strhash Wire
