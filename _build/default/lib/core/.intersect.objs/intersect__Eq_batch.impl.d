lib/core/eq_batch.ml: Array Bitio Commsim Float Hashtbl Iterated_log List Printf Prng Strhash Wire
