lib/core/bucket_protocol.mli: Commsim Iset Prng Protocol
