lib/core/wire.ml: Array Bitio List
