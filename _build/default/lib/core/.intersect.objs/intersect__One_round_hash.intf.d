lib/core/one_round_hash.mli: Protocol
