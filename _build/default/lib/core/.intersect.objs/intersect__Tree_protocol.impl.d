lib/core/tree_protocol.ml: Array Basic_intersection Bitio Commsim Float Hashing Iset Iterated_log List Printf Prng Protocol Strhash Vtree Wire
