lib/core/eq_batch.mli: Bitio Commsim Prng
