lib/core/private_coin.ml: Array Bitio Commsim Int64 Iterated_log Prng Protocol
