lib/core/one_round_hash.ml: Array Basic_intersection Bitio Commsim Iterated_log Printf Prng Protocol Strhash
