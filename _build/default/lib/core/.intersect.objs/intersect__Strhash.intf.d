lib/core/strhash.mli: Bitio Prng
