lib/core/verified.ml: Array Commsim Equality Printf Prng Protocol
