lib/core/basic_intersection.mli: Bitio Commsim Hashtbl Iset Prng Protocol Strhash
