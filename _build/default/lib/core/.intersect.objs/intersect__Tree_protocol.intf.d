lib/core/tree_protocol.mli: Commsim Iset Prng Protocol
