lib/core/vtree.mli:
