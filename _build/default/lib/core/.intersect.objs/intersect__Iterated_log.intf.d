lib/core/iterated_log.mli:
