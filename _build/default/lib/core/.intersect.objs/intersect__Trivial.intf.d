lib/core/trivial.mli: Protocol
