lib/core/basic_intersection.ml: Array Bitio Commsim Float Hashtbl Iset Iterated_log Printf Prng Protocol Strhash Wire
