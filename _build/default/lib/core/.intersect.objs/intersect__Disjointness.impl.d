lib/core/disjointness.ml: Array Bitio Commsim Float Iset Iterated_log Option Printf Prng Protocol Strhash
