lib/core/iterated_log.ml: Bitio
