lib/core/strhash.ml: Bitio List Prng
