lib/core/protocol.ml: Array Commsim Iset Prng
