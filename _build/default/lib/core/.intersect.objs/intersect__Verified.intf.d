lib/core/verified.mli: Commsim Iset Prng Protocol
