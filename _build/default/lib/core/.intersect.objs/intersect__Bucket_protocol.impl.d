lib/core/bucket_protocol.ml: Array Bitio Commsim Eq_batch Hashing Hashtbl Iset List Option Printf Prng Protocol
