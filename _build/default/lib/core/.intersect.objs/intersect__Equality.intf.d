lib/core/equality.mli: Bitio Commsim Iset Prng
