lib/core/private_coin.mli: Protocol
