lib/core/trivial.ml: Bitio Commsim Iset Protocol Wire
