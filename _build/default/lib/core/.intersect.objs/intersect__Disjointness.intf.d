lib/core/disjointness.mli: Commsim Iset Prng Protocol
