(** Integer iterated logarithms: the yardstick of the paper's
    communication/round trade-off ([log^(0) k = k], [log^(i) k =
    log (log^(i-1) k)], and [log* k]). *)

(** [log2_ceil x] is [ceil (log2 x)] for [x >= 1]; [log2_ceil 1 = 0]. *)
val log2_ceil : int -> int

(** [ilog i k] is the integer [log^(i) k]: apply [log2_ceil] [i] times to
    [k >= 1], clamping at 1 so further iterations stay defined.
    [ilog 0 k = k]. *)
val ilog : int -> int -> int

(** [log_star k] is the least [i >= 0] with [ilog i k <= 1]. *)
val log_star : int -> int

(** [tower i] is the power tower 2^(2^(...)) of height [i]
    ([tower 0 = 1]); inverse of {!log_star} for tests. *)
val tower : int -> int
