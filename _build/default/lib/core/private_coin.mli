(** The private-randomness model (§3.1).

    In the common-random-string model the parties get shared coins for
    free.  With only private coins, Newman's theorem adds
    [O(log log T)] bits non-constructively; the paper instead makes its
    protocols {e constructive}: after the FKS universe reduction, every
    hash function the protocol needs can be described with
    [O(log k + log log n)] random bits, which Alice simply draws privately
    and ships in the first message.

    This wrapper implements that compilation for any protocol in this
    library: Alice draws a root seed of [seed_bits ~universe ~k] =
    [Θ(log k + log log n)] bits, sends it, and both parties derive all
    shared randomness from it.  In our simulation a PRNG seed stands in
    for the explicit small hash-family descriptions; the {e communicated
    bit count} matches the paper's extra term, turning e.g. Theorem 3.1
    into its stated [O(k + log log n)] private-coin form. *)

(** The in-band seed width: [log2 k + log2 log2 n + 32] slack bits. *)
val seed_bits : universe:int -> k:int -> int

(** [protocol base] prepends the seed exchange (one extra message and
    round) and runs [base] on randomness derived from the transmitted
    seed plus Alice's private generator. *)
val protocol : Protocol.t -> Protocol.t
