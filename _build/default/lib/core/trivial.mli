(** The trivial deterministic protocol ([D^(1)(INT_k) = O(k log (n/k))]).

    Alice ships her whole set with the gap encoding (within a constant of
    the [log2 (binom n k)] optimum); Bob intersects locally and returns the
    intersection.  Deterministic, always exact, two messages. *)

val protocol : Protocol.t

(** Variant where both parties send their full sets simultaneously (one
    round, [|S| + |T|] encodings) — the "exchange inputs" upper bound quoted
    in the introduction. *)
val protocol_full_exchange : Protocol.t

(** Like {!protocol} but with the enumerative codec ({!Bitio.Enum_codec}):
    the set travels in exactly [⌈log2 (binom n |S|)⌉] bits, the
    information-theoretic optimum for the deterministic one-round setting.
    Universes must stay below [2^26]. *)
val protocol_entropy : Protocol.t
