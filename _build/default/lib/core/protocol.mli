(** Common shape of all two-party [INT_k] protocols in this library.

    Every protocol takes the shared random generator, the universe size, and
    the two input sets, runs over the {!Commsim} channel, and produces both
    parties' outputs plus the exact communication cost.

    The {e candidate-sandwich} contract: a protocol listed as [sandwich]
    guarantees, with probability 1, that
    [S ∩ T ⊆ alice ⊆ S] and [S ∩ T ⊆ bob ⊆ T].  Under this contract,
    [alice = bob] implies both equal [S ∩ T] (Corollary 3.4 / Proposition
    3.9), which is what {!Verified} exploits to amplify success. *)

type outcome = { alice : Iset.t; bob : Iset.t; cost : Commsim.Cost.t }

type t = {
  name : string;
  sandwich : bool;  (** the candidate-sandwich contract above holds *)
  run : Prng.Rng.t -> universe:int -> Iset.t -> Iset.t -> outcome;
}

(** Did the two parties produce the same set? *)
val agreed : outcome -> bool

(** Did both parties output exactly [S ∩ T]? *)
val exact : outcome -> s:Iset.t -> t:Iset.t -> bool

(** Check the sandwich contract on one outcome. *)
val sandwich_holds : outcome -> s:Iset.t -> t:Iset.t -> bool

(** Validate protocol inputs: sorted distinct elements inside the
    universe.  Raises [Invalid_argument] otherwise. *)
val validate_inputs : universe:int -> Iset.t -> Iset.t -> unit
