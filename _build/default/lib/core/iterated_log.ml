let log2_ceil x =
  if x < 1 then invalid_arg "Iterated_log.log2_ceil";
  if x = 1 then 0 else Bitio.Codes.bit_width (x - 1)

let ilog i k =
  if i < 0 then invalid_arg "Iterated_log.ilog";
  if k < 1 then invalid_arg "Iterated_log.ilog: k";
  let rec loop i k = if i = 0 then k else loop (i - 1) (max 1 (log2_ceil k)) in
  loop i k

let log_star k =
  let rec loop i k = if k <= 1 then i else loop (i + 1) (log2_ceil k) in
  loop 0 k

let tower i =
  if i < 0 || i > 4 (* tower 5 = 2^65536 *) then invalid_arg "Iterated_log.tower";
  let rec loop i acc = if i = 0 then acc else loop (i - 1) (1 lsl acc) in
  loop i 1
