type node = { first_leaf : int; leaf_count : int }

type t = { k : int; r : int; levels : node array array }

let degree ~k ~r ~level =
  if level < 1 || level > r then invalid_arg "Vtree.degree";
  let d =
    if level = 1 then Iterated_log.ilog (r - 1) k
    else begin
      let top = Iterated_log.ilog (r - level) k in
      let bottom = Iterated_log.ilog (r - level + 1) k in
      (top + bottom - 1) / bottom
    end
  in
  max 2 d

let group_level below ~deg =
  let n = Array.length below in
  let count = (n + deg - 1) / deg in
  Array.init count (fun g ->
      let lo = g * deg in
      let hi = min n (lo + deg) in
      let first_leaf = below.(lo).first_leaf in
      let last = below.(hi - 1) in
      { first_leaf; leaf_count = last.first_leaf + last.leaf_count - first_leaf })

let build ~k ~r =
  if k < 1 || r < 1 then invalid_arg "Vtree.build";
  let levels = Array.make (r + 1) [||] in
  levels.(0) <- Array.init k (fun i -> { first_leaf = i; leaf_count = 1 });
  for level = 1 to r do
    let deg =
      if level = r then max 2 (Array.length levels.(level - 1)) (* squash into a single root *)
      else degree ~k ~r ~level
    in
    levels.(level) <- group_level levels.(level - 1) ~deg
  done;
  assert (Array.length levels.(r) = 1);
  { k; r; levels }

let leaves node = List.init node.leaf_count (fun i -> node.first_leaf + i)
