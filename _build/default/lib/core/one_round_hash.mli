(** The one-round randomized protocol ([R^(1)(INT_k) = O(k log k)]).

    Each party sends [O(log k)]-bit shared-randomness tags of its elements;
    the other side keeps the elements whose tag it saw.  One message each
    way, sent before either party reads — causally independent, so the
    whole protocol is a single simultaneous round.

    With [C = confidence] the per-pair false-positive probability is
    [k^-C]; outputs are sandwich candidates that equal [S ∩ T] with
    probability [1 - O(k^(2-C))]. *)

val protocol : ?confidence:int -> unit -> Protocol.t

(** Tag width used for sets of size at most [k]. *)
val tag_bits : k:int -> confidence:int -> int
