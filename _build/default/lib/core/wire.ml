let of_set set =
  let buf = Bitio.Bitbuf.create () in
  Bitio.Set_codec.write_gaps buf set;
  Bitio.Bitbuf.contents buf

let of_sets sets =
  let buf = Bitio.Bitbuf.create () in
  List.iter (fun set -> Bitio.Set_codec.write_gaps buf set) sets;
  Bitio.Bitbuf.contents buf

let gamma_msg v =
  let buf = Bitio.Bitbuf.create () in
  Bitio.Codes.write_gamma buf v;
  Bitio.Bitbuf.contents buf

let read_gamma_msg payload = Bitio.Codes.read_gamma (Bitio.Bitreader.create payload)

let bit_msg b = Bitio.Bits.of_bools [ b ]

let read_bit_msg payload = Bitio.Bits.get payload 0

let bitmap_msg flags = Bitio.Bits.of_bools (Array.to_list flags)

let read_bitmap_msg payload ~width =
  if Bitio.Bits.length payload < width then invalid_arg "Wire.read_bitmap_msg";
  Array.init width (Bitio.Bits.get payload)
