(* Experiment harness entry point.

   `dune exec bench/main.exe` regenerates every table of the experiment
   matrix (T1..T13, F1, A1..A5 — registry entries 001..019; see
   experiments/README.md) and then runs the Bechamel micro-benchmarks.
   Options:

     --quick        smaller sweeps (CI-friendly)
     --only T1,T3   run a subset of the tables
     --no-micro     skip the Bechamel timing section
     --micro-only   only the Bechamel timing section
     --trace-overhead  only the tracing-tax measurement (writes
                       BENCH_trace_overhead.json)
     --engine-scaling  only the trial-engine throughput measurement
                       (writes BENCH_engine_scaling.json)
     --alloc-gate      only the allocations-per-trial regression gate
                       (exit 1 if the bucket k=1024 hot path allocates
                       more per trial than the committed seed baseline) *)

let run quick only no_micro micro_only trace_overhead engine_scaling alloc_gate =
  if trace_overhead then begin
    Micro.trace_overhead ();
    exit 0
  end;
  if alloc_gate then exit (Scaling.alloc_gate ());
  if engine_scaling then begin
    Scaling.run ();
    exit 0
  end;
  (match List.find_opt (fun n -> not (List.mem n Tables.names)) only with
  | Some bad ->
      Printf.eprintf "unknown table %S (known: %s)\n" bad (String.concat ", " Tables.names);
      exit 2
  | None -> ());
  let t0 = Unix.gettimeofday () in
  if not micro_only then begin
    print_endline "Set-intersection communication experiments";
    print_endline "(Brody-Chakrabarti-Kondapally-Woodruff-Yaroslavtsev, PODC 2014 reproduction)";
    print_newline ();
    Tables.run ~quick ~only
  end;
  if (not no_micro) || micro_only then Micro.run ();
  (* Stderr, not stdout: the tables are deterministic for a fixed seed
     and the experiment registry's regen gate diffs two stdout runs. *)
  Printf.eprintf "\nTotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps and fewer trials (CI-friendly).")

let only =
  Arg.(
    value
    & opt (list string) []
    & info [ "only" ] ~docv:"TABLES" ~doc:"Comma-separated subset of tables to run (e.g. T1,T3,A2).")

let no_micro = Arg.(value & flag & info [ "no-micro" ] ~doc:"Skip the Bechamel micro-benchmarks.")

let micro_only =
  Arg.(value & flag & info [ "micro-only" ] ~doc:"Run only the Bechamel micro-benchmarks.")

let trace_overhead =
  Arg.(
    value & flag
    & info [ "trace-overhead" ]
        ~doc:"Measure the cost of enabled vs disabled tracing and write BENCH_trace_overhead.json.")

let engine_scaling =
  Arg.(
    value & flag
    & info [ "engine-scaling" ]
        ~doc:
          "Measure trial-engine throughput at 1/2/4 worker domains and write \
           BENCH_engine_scaling.json.")

let alloc_gate =
  Arg.(
    value & flag
    & info [ "alloc-gate" ]
        ~doc:
          "Run only the allocations-per-trial regression gate: exit 1 if the bucket k=1024 hot \
           path allocates more bytes per trial than the committed seed baseline.")

let cmd =
  let doc = "Regenerate the experiment tables of the PODC'14 set-intersection reproduction." in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      const run $ quick $ only $ no_micro $ micro_only $ trace_overhead $ engine_scaling
      $ alloc_gate)

let () = exit (Cmd.eval cmd)
