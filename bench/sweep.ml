(* Mega-sweep harness entry point.

   Runs the protocol x k x fault-plan matrix at 10^6+ trials per
   invocation, prints the per-cell table, and emits the consolidated
   JSON report.

     dune exec bench/sweep.exe                     # default matrix (1.04M trials)
     dune exec bench/sweep.exe -- --smoke          # seconds-scale CI matrix
     dune exec bench/sweep.exe -- --trials 10000 --out BENCH_sweep.json

   The report is reproducible: the same flags produce the identical
   JSON, bit for bit, at every --domains value (the reproduce field
   quotes the command). *)

open Cmdliner

let run smoke seed trials universe_bits attempts check_bits out json_only domains telemetry_out =
  let base = if smoke then Workload.Sweep.smoke else Workload.Sweep.default in
  let override v = function Some v' -> v' | None -> v in
  let config =
    {
      base with
      Workload.Sweep.seed = override base.Workload.Sweep.seed seed;
      trials_per_cell = override base.Workload.Sweep.trials_per_cell trials;
      universe_bits = override base.Workload.Sweep.universe_bits universe_bits;
      budget_attempts = override base.Workload.Sweep.budget_attempts attempts;
      check_bits = override base.Workload.Sweep.check_bits check_bits;
    }
  in
  let reproduce =
    Printf.sprintf "dune exec bench/sweep.exe --%s --seed %d --trials %d"
      (if smoke then " --smoke" else "")
      config.Workload.Sweep.seed config.Workload.Sweep.trials_per_cell
  in
  let sink =
    match telemetry_out with None -> None | Some _ -> Some (Workload.Telemetry.create_sink ())
  in
  let report = Workload.Sweep.run ?domains ?sink config in
  (match (telemetry_out, sink) with
  | Some path, Some sink ->
      let oc = open_out path in
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (Workload.Telemetry.jsonl sink);
      close_out oc;
      if not json_only then Printf.printf "telemetry stream written to %s\n" path
  | _ -> ());
  if not json_only then print_string (Workload.Sweep.summary report);
  let json = Stats.Json.to_string_pretty (Workload.Sweep.to_json ~reproduce report) in
  (match out with
  | None -> if json_only then print_endline json
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      if not json_only then Printf.printf "JSON report written to %s\n" path);
  if report.Workload.Sweep.pass then 0 else 1

let some_int names docv doc = Arg.(value & opt (some int) None & info names ~docv ~doc)

let cmd =
  let smoke = Arg.(value & flag & info [ "smoke" ] ~doc:"Seconds-scale CI matrix.") in
  let seed = some_int [ "seed" ] "SEED" "Root seed (default 2014)." in
  let trials = some_int [ "trials" ] "N" "Trials per matrix cell." in
  let universe_bits = some_int [ "universe-bits" ] "B" "Universe size 2^B." in
  let attempts = some_int [ "attempts" ] "A" "Resilient retry budget (faulted cells)." in
  let check_bits = some_int [ "check-bits" ] "C" "Initial fingerprint width (faulted cells)." in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report here.")
  in
  let json_only = Arg.(value & flag & info [ "json" ] ~doc:"Print only the JSON report.") in
  let domains =
    some_int [ "domains" ]
      "D" "Engine worker domains (default: one per core; the report is identical for any value)."
  in
  let telemetry_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:"Write the fleet-telemetry JSONL stream (per-cell snapshots) here.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Run the mega-sweep conformance matrix at 10^6+ trial scale.")
    Term.(
      const run $ smoke $ seed $ trials $ universe_bits $ attempts $ check_bits $ out $ json_only
      $ domains $ telemetry_out)

let () = exit (Cmd.eval' cmd)
