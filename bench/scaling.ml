(* Engine scaling: throughput of the Domain-parallel trial runner.

   Runs the same seeded bucket-protocol trial grid at 1, 2 and 4 worker
   domains, reports trials/sec and speedup over the single-domain run,
   and writes BENCH_engine_scaling.json.  Also asserts along the way
   that the merged results are identical at every domain count — the
   engine's determinism contract, measured rather than assumed.

   The JSON records [cores] (Domain.recommended_domain_count) because
   speedup is bounded by the cores actually available: on a single-core
   host every domain count measures the same sequential throughput plus
   scheduling overhead. *)

open Intersect

let seed = 2014
let k = 64
let universe_bits = 20
let trials = 600

let trial_grid ~domains =
  let universe = 1 lsl universe_bits in
  let protocol = Bucket_protocol.protocol ~k () in
  let stream = Engine.Seed_stream.create ~base:seed ~label:"bench/scaling" in
  Engine.Pool.map ~domains ~trials (fun i ->
      let rng = Engine.Seed_stream.trial_rng stream (i + 1) in
      let pair =
        Workload.Setgen.pair_with_overlap
          (Prng.Rng.with_label rng "pair")
          ~universe ~size_s:k ~size_t:k ~overlap:(k / 2)
      in
      let outcome =
        protocol.Protocol.run
          (Prng.Rng.with_label rng "protocol")
          ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t
      in
      (outcome.Protocol.cost.Commsim.Cost.total_bits, Iset.cardinal outcome.Protocol.alice))

let time_grid ~domains =
  ignore (trial_grid ~domains);
  (* warm-up *)
  let t0 = Unix.gettimeofday () in
  let results = trial_grid ~domains in
  let t1 = Unix.gettimeofday () in
  (results, float_of_int trials /. (t1 -. t0))

let run ?(out = "BENCH_engine_scaling.json") () =
  let cores = Domain.recommended_domain_count () in
  let counts = [ 1; 2; 4 ] in
  let measured = List.map (fun d -> (d, time_grid ~domains:d)) counts in
  let baseline_results, baseline_rate =
    match measured with (_, m) :: _ -> m | [] -> assert false
  in
  List.iter
    (fun (d, (results, _)) ->
      if results <> baseline_results then
        failwith (Printf.sprintf "engine scaling: results differ at %d domains" d))
    measured;
  let table =
    Stats.Table.create ~title:"Engine scaling (bucket, k=64, 600 trials)"
      ~columns:[ "domains"; "trials/sec"; "speedup" ]
  in
  List.iter
    (fun (d, (_, rate)) ->
      Stats.Table.add_row table
        [ string_of_int d; Printf.sprintf "%.0f" rate; Printf.sprintf "%.2fx" (rate /. baseline_rate) ])
    measured;
  Stats.Table.print table;
  Printf.printf "cores available: %d; merged results identical at every domain count\n" cores;
  let json =
    Stats.Json.Obj
      [
        ("bench", Stats.Json.Str "engine_scaling");
        ("protocol", Stats.Json.Str "bucket");
        ("seed", Stats.Json.Int seed);
        ("k", Stats.Json.Int k);
        ("universe_bits", Stats.Json.Int universe_bits);
        ("trials", Stats.Json.Int trials);
        ("cores", Stats.Json.Int cores);
        ("deterministic_across_domains", Stats.Json.Bool true);
        ( "cases",
          Stats.Json.List
            (List.map
               (fun (d, (_, rate)) ->
                 Stats.Json.Obj
                   [
                     ("domains", Stats.Json.Int d);
                     ("trials_per_sec", Stats.Json.Float rate);
                     ("speedup", Stats.Json.Float (rate /. baseline_rate));
                   ])
               measured) );
      ]
  in
  Out_channel.with_open_text out (fun oc ->
      Out_channel.output_string oc (Stats.Json.to_string_pretty json);
      Out_channel.output_char oc '\n');
  Printf.printf "wrote %s\n" out
