(* Engine scaling: throughput and allocation behaviour of the
   Domain-parallel trial runner.

   Two sections, both written to BENCH_engine_scaling.json:

   - [cases]: the same seeded bucket-protocol trial grid at 1, 2 and 4
     worker domains — trials/sec, speedup over the single-domain run,
     plus the calling domain's allocated bytes/trial and the major
     collections observed during the timed grid, so a scheduling
     regression (the 0.44x two-domain figure on a single-core host) is
     attributable to GC pressure vs pure domain-switch overhead.
     Asserts along the way that the merged results are identical at
     every domain count — the engine's determinism contract, measured
     rather than assumed.

   - [alloc]: the allocations-per-trial probe on the hot path this PR
     pools (bucket, k = 1024, sequential): bytes/trial and major
     collections/trial against the committed seed baseline, with the
     reduction ratio the acceptance gate reads.  [alloc_gate] exits
     non-zero if bytes/trial regresses past the seed baseline.

   The JSON records [cores] (Domain.recommended_domain_count) because
   speedup is bounded by the cores actually available: on a single-core
   host every domain count measures the same sequential throughput plus
   scheduling overhead. *)

open Intersect

let seed = 2014
let k = 64
let universe_bits = 20
let trials = 600

let trial_of ~protocol ~stream ~universe ~k i =
  let rng = Engine.Seed_stream.trial_rng stream (i + 1) in
  let pair =
    Workload.Setgen.pair_with_overlap
      (Prng.Rng.with_label rng "pair")
      ~universe ~size_s:k ~size_t:k ~overlap:(k / 2)
  in
  let outcome =
    protocol.Protocol.run
      (Prng.Rng.with_label rng "protocol")
      ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t
  in
  (outcome.Protocol.cost.Commsim.Cost.total_bits, Iset.cardinal outcome.Protocol.alice)

let trial_grid ~domains =
  let universe = 1 lsl universe_bits in
  let protocol = Bucket_protocol.protocol ~k () in
  let stream = Engine.Seed_stream.create ~base:seed ~label:"bench/scaling" in
  Engine.Pool.map ~domains ~trials (fun i -> trial_of ~protocol ~stream ~universe ~k i)

type case_measure = {
  results : (int * int) array;
  rate : float;
  bytes_per_trial : float;  (* calling domain's share only when domains > 1 *)
  majors : int;
}

let time_grid ~domains =
  ignore (trial_grid ~domains);
  (* warm-up *)
  let s0 = Gc.quick_stat () in
  let b0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let results = trial_grid ~domains in
  let t1 = Unix.gettimeofday () in
  let b1 = Gc.allocated_bytes () in
  let s1 = Gc.quick_stat () in
  {
    results;
    rate = float_of_int trials /. (t1 -. t0);
    bytes_per_trial = (b1 -. b0) /. float_of_int trials;
    majors = s1.Gc.major_collections - s0.Gc.major_collections;
  }

(* ---------- allocations-per-trial probe (bucket k = 1024) ---------- *)

(* Bytes/trial of the full bucket trial at the PR-5 seed commit, measured
   with this probe (20 trials, warm pools) before the allocation-lean
   rewrite landed.  The tier1 alloc gate fails any build that regresses
   past it; [reduction] reports how far below it the build sits. *)
let alloc_seed_baseline_bytes = 9_181_129.0

let alloc_k = 1024
let alloc_trials = 20

type alloc_measure = {
  alloc_bytes_per_trial : float;
  alloc_majors_per_trial : float;
  reduction : float;  (* seed baseline / measured *)
}

let alloc_probe () =
  let universe = 1 lsl universe_bits in
  let protocol = Bucket_protocol.protocol ~k:alloc_k () in
  let stream = Engine.Seed_stream.create ~base:seed ~label:"bench/scaling/alloc" in
  let run_trial i =
    ignore (Sys.opaque_identity (trial_of ~protocol ~stream ~universe ~k:alloc_k i))
  in
  (* Warm-up: codec caches and bitio arenas populate on first use. *)
  for i = 0 to 2 do
    run_trial i
  done;
  let s0 = Gc.quick_stat () in
  let b0 = Gc.allocated_bytes () in
  for i = 0 to alloc_trials - 1 do
    run_trial i
  done;
  let b1 = Gc.allocated_bytes () in
  let s1 = Gc.quick_stat () in
  let bytes = (b1 -. b0) /. float_of_int alloc_trials in
  {
    alloc_bytes_per_trial = bytes;
    alloc_majors_per_trial =
      float_of_int (s1.Gc.major_collections - s0.Gc.major_collections)
      /. float_of_int alloc_trials;
    reduction = (if bytes > 0.0 then alloc_seed_baseline_bytes /. bytes else Float.infinity);
  }

let alloc_json (a : alloc_measure) =
  Stats.Json.Obj
    [
      ("protocol", Stats.Json.Str "bucket");
      ("k", Stats.Json.Int alloc_k);
      ("trials", Stats.Json.Int alloc_trials);
      ("bytes_per_trial", Stats.Json.Float a.alloc_bytes_per_trial);
      ("major_collections_per_trial", Stats.Json.Float a.alloc_majors_per_trial);
      ("seed_baseline_bytes_per_trial", Stats.Json.Float alloc_seed_baseline_bytes);
      ("reduction", Stats.Json.Float a.reduction);
    ]

(* Tier1's allocation-regression gate: fail any build whose bucket
   k=1024 hot path allocates more per trial than the seed baseline. *)
let alloc_gate () =
  let a = alloc_probe () in
  Printf.printf "alloc gate: bucket k=%d  %.0f bytes/trial (seed baseline %.0f, %.2fx reduction)\n"
    alloc_k a.alloc_bytes_per_trial alloc_seed_baseline_bytes a.reduction;
  if a.alloc_bytes_per_trial <= alloc_seed_baseline_bytes then 0
  else begin
    Printf.eprintf "alloc gate: REGRESSION — %.0f bytes/trial exceeds the seed baseline %.0f\n"
      a.alloc_bytes_per_trial alloc_seed_baseline_bytes;
    1
  end

let run ?(out = "BENCH_engine_scaling.json") () =
  let cores = Domain.recommended_domain_count () in
  let counts = [ 1; 2; 4 ] in
  let measured = List.map (fun d -> (d, time_grid ~domains:d)) counts in
  let baseline = match measured with (_, m) :: _ -> m | [] -> assert false in
  List.iter
    (fun (d, m) ->
      if m.results <> baseline.results then
        failwith (Printf.sprintf "engine scaling: results differ at %d domains" d))
    measured;
  let table =
    Stats.Table.create ~title:"Engine scaling (bucket, k=64, 600 trials)"
      ~columns:[ "domains"; "trials/sec"; "speedup"; "bytes/trial"; "majors" ]
  in
  List.iter
    (fun (d, m) ->
      Stats.Table.add_row table
        [
          string_of_int d;
          Printf.sprintf "%.0f" m.rate;
          Printf.sprintf "%.2fx" (m.rate /. baseline.rate);
          Printf.sprintf "%.0f" m.bytes_per_trial;
          string_of_int m.majors;
        ])
    measured;
  Stats.Table.print table;
  Printf.printf "cores available: %d; merged results identical at every domain count\n" cores;
  let alloc = alloc_probe () in
  Printf.printf "alloc probe: bucket k=%d  %.0f bytes/trial (seed baseline %.0f, %.2fx reduction)\n"
    alloc_k alloc.alloc_bytes_per_trial alloc_seed_baseline_bytes alloc.reduction;
  let json =
    Stats.Json.Obj
      [
        ("bench", Stats.Json.Str "engine_scaling");
        ("protocol", Stats.Json.Str "bucket");
        ("seed", Stats.Json.Int seed);
        ("k", Stats.Json.Int k);
        ("universe_bits", Stats.Json.Int universe_bits);
        ("trials", Stats.Json.Int trials);
        ("cores", Stats.Json.Int cores);
        ("deterministic_across_domains", Stats.Json.Bool true);
        ( "cases",
          Stats.Json.List
            (List.map
               (fun (d, m) ->
                 Stats.Json.Obj
                   [
                     ("domains", Stats.Json.Int d);
                     ("trials_per_sec", Stats.Json.Float m.rate);
                     ("speedup", Stats.Json.Float (m.rate /. baseline.rate));
                     ("bytes_per_trial", Stats.Json.Float m.bytes_per_trial);
                     ("major_collections", Stats.Json.Int m.majors);
                   ])
               measured) );
        ("alloc", alloc_json alloc);
      ]
  in
  Out_channel.with_open_text out (fun oc ->
      Out_channel.output_string oc (Stats.Json.to_string_pretty json);
      Out_channel.output_char oc '\n');
  Printf.printf "wrote %s\n" out
