(* Standalone hot-path regression bench (the CLI's `bench-regress`
   subcommand is the same harness; this executable exists so perf sweeps
   can run without building the whole CLI).

     dune exec bench/regress.exe                        # table only
     dune exec bench/regress.exe -- --out BENCH_hotpath.json
     dune exec bench/regress.exe -- --smoke --baseline BENCH_hotpath.json

   Exit status: 0 clean, 1 baseline violations, 2 usage errors. *)

open Cmdliner

let run smoke json deterministic out baseline tolerance seed trials ks protocols =
  let base = if smoke then Workload.Regress.smoke else Workload.Regress.default in
  let config =
    {
      base with
      Workload.Regress.seed;
      trials = Option.value trials ~default:base.Workload.Regress.trials;
      ks = Option.value ks ~default:base.Workload.Regress.ks;
      protocols = Option.value protocols ~default:base.Workload.Regress.protocols;
    }
  in
  match Workload.Regress.run config with
  | exception Invalid_argument m ->
      prerr_endline ("bench-regress: " ^ m);
      2
  | report -> (
      if deterministic then
        print_endline (Stats.Json.to_string_pretty (Workload.Regress.deterministic_json report))
      else if json then print_endline (Stats.Json.to_string_pretty (Workload.Regress.to_json report))
      else print_string (Workload.Regress.summary report);
      (match out with
      | None -> ()
      | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc
                (Stats.Json.to_string_pretty (Workload.Regress.to_json report));
              Out_channel.output_char oc '\n');
          Printf.eprintf "wrote %s\n" path);
      match baseline with
      | None -> 0
      | Some path -> (
          let contents = In_channel.with_open_text path In_channel.input_all in
          match Stats.Json.of_string contents with
          | Error e ->
              Printf.eprintf "bench-regress: cannot parse %s: %s\n" path e;
              2
          | Ok bjson -> (
              match Workload.Regress.compare_baseline ~tolerance report bjson with
              | Error e ->
                  Printf.eprintf "bench-regress: %s\n" e;
                  2
              | Ok (compared, []) ->
                  Printf.eprintf "baseline check: %d cell(s) compared, all within tolerance %.2f\n"
                    compared tolerance;
                  0
              | Ok (compared, violations) ->
                  Printf.eprintf "baseline check: %d cell(s) compared, %d violation(s):\n" compared
                    (List.length violations);
                  List.iter
                    (fun v -> Printf.eprintf "  %s\n" (Workload.Regress.violation_message v))
                    violations;
                  1)))

let smoke_arg =
  Arg.(value & flag & info [ "smoke" ] ~doc:"Seconds-scale subset (k = 64 only, 2 trials).")

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Print the full JSON report to stdout.")

let deterministic_arg =
  Arg.(
    value & flag
    & info [ "deterministic-json" ]
        ~doc:
          "Print only the seeded fields (bits, messages, rounds) as JSON; two runs of the same \
           config must be byte-identical.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write the full JSON report (the BENCH_hotpath.json shape).")

let baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Compare against a committed BENCH_hotpath.json: deterministic fields must match \
           exactly; timings within tolerance.  Exit 1 on violation.")

let tolerance_arg =
  Arg.(
    value & opt float 0.5
    & info [ "tolerance" ] ~docv:"F"
        ~doc:"Allowed fractional timing regression vs the baseline (0.5 allows 1.5x).")

let seed_arg = Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let trials_arg =
  Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc:"Seeded trials per cell.")

let ks_arg =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "k"; "set-size" ] ~docv:"K,K,..." ~doc:"Set-size sweep (comma-separated).")

let protocols_arg =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "protocols" ] ~docv:"P,P,..."
        ~doc:
          ("Protocols to bench, comma-separated (default: all of "
          ^ String.concat ", " Workload.Regress.protocol_names
          ^ ")."))

let cmd =
  let doc = "Hot-path performance regression bench for the intersection protocols." in
  Cmd.v
    (Cmd.info "regress" ~doc)
    Term.(
      const run $ smoke_arg $ json_arg $ deterministic_arg $ out_arg $ baseline_arg $ tolerance_arg
      $ seed_arg $ trials_arg $ ks_arg $ protocols_arg)

let () = exit (Cmd.eval' cmd)
