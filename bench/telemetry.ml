(* Telemetry overhead bench entry point.

   Runs the same seeded clean-link sessions twice — telemetry off, then
   telemetry on (fleet registry + per-session flight recorder + quantile
   sketches) — and reports the wall-clock ratio plus the deterministic
   session fields, which must be identical between the passes (telemetry
   must observe, never perturb).

     dune exec bench/telemetry.exe                     # k=1024, 24 sessions
     dune exec bench/telemetry.exe -- --smoke          # seconds-scale CI configuration
     dune exec bench/telemetry.exe -- --out BENCH_telemetry.json --max-ratio 1.25

   With --max-ratio the bench exits non-zero when the enabled/disabled
   ratio exceeds the bound (or when the deterministic fields diverge) —
   the regression gate behind BENCH_telemetry.json. *)

open Cmdliner

let run smoke seed k universe_bits sessions out json_only max_ratio =
  let base =
    if smoke then Workload.Telemetry.overhead_smoke else Workload.Telemetry.overhead_default
  in
  let override v = function Some v' -> v' | None -> v in
  let config =
    {
      Workload.Telemetry.seed = override base.Workload.Telemetry.seed seed;
      k = override base.Workload.Telemetry.k k;
      universe_bits = override base.Workload.Telemetry.universe_bits universe_bits;
      sessions = override base.Workload.Telemetry.sessions sessions;
    }
  in
  let reproduce =
    Printf.sprintf "dune exec bench/telemetry.exe --%s --seed %d --k %d --sessions %d"
      (if smoke then " --smoke" else "")
      config.Workload.Telemetry.seed config.Workload.Telemetry.k
      config.Workload.Telemetry.sessions
  in
  let report = Workload.Telemetry.run_overhead config in
  if not json_only then print_endline (Workload.Telemetry.overhead_summary report);
  let json =
    Stats.Json.to_string_pretty (Workload.Telemetry.overhead_json ~reproduce report)
  in
  (match out with
  | None -> if json_only then print_endline json
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      if not json_only then Printf.printf "JSON report written to %s\n" path);
  if not report.Workload.Telemetry.deterministic_match then begin
    Printf.eprintf "telemetry bench: deterministic session fields diverged between passes\n";
    1
  end
  else
    match max_ratio with
    | Some bound when report.Workload.Telemetry.ratio > bound ->
        Printf.eprintf "telemetry bench: overhead ratio %.3f exceeds bound %.3f\n"
          report.Workload.Telemetry.ratio bound;
        1
    | _ -> 0

let some_int names docv doc = Arg.(value & opt (some int) None & info names ~docv ~doc)

let cmd =
  let smoke = Arg.(value & flag & info [ "smoke" ] ~doc:"Seconds-scale CI configuration.") in
  let seed = some_int [ "seed" ] "SEED" "Root seed (default 2014)." in
  let k = some_int [ "k" ] "K" "Input set size per session." in
  let universe_bits = some_int [ "universe-bits" ] "B" "Universe size 2^B." in
  let sessions = some_int [ "sessions" ] "N" "Sessions per pass." in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report here.")
  in
  let json_only = Arg.(value & flag & info [ "json" ] ~doc:"Print only the JSON report.") in
  let max_ratio =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-ratio" ] ~docv:"R"
          ~doc:"Fail when the telemetry-on/off wall-clock ratio exceeds R.")
  in
  Cmd.v
    (Cmd.info "telemetry" ~doc:"Measure the hot-path overhead of the fleet-telemetry layer.")
    Term.(const run $ smoke $ seed $ k $ universe_bits $ sessions $ out $ json_only $ max_ratio)

let () = exit (Cmd.eval' cmd)
