(* Adversarial-channel soak harness entry point.

   Runs N seeded trials of the Resilient wrapper per (protocol x fault
   plan) cell, prints the summary table, and emits the JSON report.

     dune exec bench/soak.exe                      # full matrix (1000 trials/cell)
     dune exec bench/soak.exe -- --smoke           # seconds-scale CI configuration
     dune exec bench/soak.exe -- --trials 200 --k 32 --out soak.json

   The report is reproducible: the same flags produce the identical JSON,
   bit for bit (the reproduce field of the report quotes the command). *)

open Cmdliner

let run smoke seed trials k universe_bits overlap attempts check_bits out json_only domains
    telemetry_out =
  let base = if smoke then Workload.Soak.smoke else Workload.Soak.default in
  let override v = function Some v' -> v' | None -> v in
  let config =
    {
      base with
      Workload.Soak.seed = override base.Workload.Soak.seed seed;
      trials = override base.Workload.Soak.trials trials;
      k = override base.Workload.Soak.k k;
      universe_bits = override base.Workload.Soak.universe_bits universe_bits;
      overlap =
        (match overlap with
        | Some o -> o
        | None -> (
            match k with Some k -> k / 2 | None -> base.Workload.Soak.overlap));
      budget_attempts = override base.Workload.Soak.budget_attempts attempts;
      check_bits = override base.Workload.Soak.check_bits check_bits;
    }
  in
  let reproduce =
    Printf.sprintf "dune exec bench/soak.exe --%s --seed %d --trials %d --k %d --overlap %d"
      (if smoke then " --smoke" else "")
      config.Workload.Soak.seed config.Workload.Soak.trials config.Workload.Soak.k
      config.Workload.Soak.overlap
  in
  let sink = match telemetry_out with None -> None | Some _ -> Some (Workload.Telemetry.create_sink ()) in
  let report = Workload.Soak.run ?domains ?sink config in
  (match (telemetry_out, sink) with
  | Some path, Some sink ->
      let oc = open_out path in
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (Workload.Telemetry.jsonl sink);
      close_out oc;
      if not json_only then Printf.printf "telemetry stream written to %s\n" path
  | _ -> ());
  if not json_only then print_string (Workload.Soak.summary report);
  let json = Stats.Json.to_string_pretty (Workload.Soak.to_json ~reproduce report) in
  (match out with
  | None -> if json_only then print_endline json
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      if not json_only then Printf.printf "JSON report written to %s\n" path);
  if List.for_all (fun c -> c.Workload.Soak.within_bound) report.Workload.Soak.cells then 0 else 1

let some_int names docv doc = Arg.(value & opt (some int) None & info names ~docv ~doc)

let cmd =
  let smoke = Arg.(value & flag & info [ "smoke" ] ~doc:"Seconds-scale CI configuration.") in
  let seed = some_int [ "seed" ] "SEED" "Root seed (default 2014)." in
  let trials = some_int [ "trials" ] "N" "Trials per (protocol x plan) cell." in
  let k = some_int [ "k" ] "K" "Input set size (overlap defaults to K/2)." in
  let universe_bits = some_int [ "universe-bits" ] "B" "Universe size 2^B." in
  let overlap = some_int [ "overlap" ] "O" "Planted intersection size." in
  let attempts = some_int [ "attempts" ] "A" "Resilient retry budget." in
  let check_bits = some_int [ "check-bits" ] "C" "Initial fingerprint width." in
  let out = Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report here.") in
  let json_only = Arg.(value & flag & info [ "json" ] ~doc:"Print only the JSON report.") in
  let domains =
    some_int [ "domains" ]
      "D" "Engine worker domains (default: one per core; the report is identical for any value)."
  in
  let telemetry_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:"Write the fleet-telemetry JSONL stream (snapshots and derived rates) here.")
  in
  Cmd.v
    (Cmd.info "soak" ~doc:"Soak intersection protocols against adversarial channels.")
    Term.(
      const run $ smoke $ seed $ trials $ k $ universe_bits $ overlap $ attempts $ check_bits $ out
      $ json_only $ domains $ telemetry_out)

let () = exit (Cmd.eval' cmd)
