(* Bechamel micro-benchmarks: wall-clock throughput of the substrate
   primitives and one end-to-end run per protocol family.  (The experiment
   tables in Tables measure communication; this section measures time.) *)

open Bechamel
open Toolkit
open Intersect

let seed = 987654321

let make_pair ~universe ~k ~overlap =
  Workload.Setgen.pair_with_overlap (Prng.Rng.of_int seed) ~universe ~size_s:k ~size_t:k ~overlap

let tests () =
  let rng = Prng.Rng.of_int seed in
  let strhash_fn = Strhash.create (Prng.Rng.with_label rng "micro/strhash") ~bits:32 in
  let cw =
    Hashing.Carter_wegman.create (Prng.Rng.with_label rng "micro/cw") ~universe:(1 lsl 44)
      ~range:1024
  in
  let payload = Bitio.Bits.of_string "a-reasonably-long-message-payload-for-hashing" in
  let pair_small = make_pair ~universe:(1 lsl 30) ~k:256 ~overlap:128 in
  let pair_large = make_pair ~universe:(1 lsl 30) ~k:1024 ~overlap:512 in
  let run_protocol protocol pair i =
    let outcome =
      protocol.Protocol.run
        (Prng.Rng.with_label (Prng.Rng.of_int (seed + i)) "micro/run")
        ~universe:(1 lsl 30) pair.Workload.Setgen.s pair.Workload.Setgen.t
    in
    ignore (Iset.cardinal outcome.Protocol.alice)
  in
  [
    Test.make ~name:"strhash/apply_int" (Staged.stage (fun () -> ignore (Strhash.apply_int strhash_fn 123456789)));
    Test.make ~name:"strhash/apply_string" (Staged.stage (fun () -> ignore (Strhash.apply strhash_fn payload)));
    Test.make ~name:"carter_wegman/hash" (Staged.stage (fun () -> ignore (Hashing.Carter_wegman.hash cw 987654321)));
    Test.make ~name:"set_codec/gaps k=256"
      (Staged.stage (fun () ->
           let buf = Bitio.Bitbuf.create () in
           Bitio.Set_codec.write_gaps buf pair_small.Workload.Setgen.s));
    Test.make ~name:"protocol/trivial k=1024"
      (Staged.stage (fun () -> run_protocol Trivial.protocol pair_large 0));
    Test.make ~name:"protocol/one-round k=1024"
      (Staged.stage (fun () -> run_protocol (One_round_hash.protocol ()) pair_large 1));
    Test.make ~name:"protocol/tree r=2 k=1024"
      (Staged.stage (fun () -> run_protocol (Tree_protocol.protocol ~r:2 ~k:1024 ()) pair_large 2));
    Test.make ~name:"protocol/tree r=log*k k=1024"
      (Staged.stage (fun () -> run_protocol (Tree_protocol.protocol_log_star ~k:1024 ()) pair_large 3));
    Test.make ~name:"protocol/bucket k=256"
      (Staged.stage (fun () -> run_protocol (Bucket_protocol.protocol ~k:256 ()) pair_small 4));
  ]

(* Observability tax: the bucket protocol timed with the span collector +
   metrics registry enabled vs the shared disabled instances.  Writes
   BENCH_trace_overhead.json so the ratio is tracked across revisions. *)
let trace_overhead ?(out = "BENCH_trace_overhead.json") () =
  let universe = 1 lsl 30 in
  let time_one ~k ~traced =
    let pair = make_pair ~universe ~k ~overlap:(k / 2) in
    let protocol = Bucket_protocol.protocol ~k () in
    let run i =
      let body () =
        let outcome =
          protocol.Protocol.run
            (Prng.Rng.with_label (Prng.Rng.of_int (seed + i)) "micro/overhead")
            ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t
        in
        ignore (Iset.cardinal outcome.Protocol.alice)
      in
      if traced then
        Obsv.Trace.with_collector (Obsv.Trace.create ())
          (fun () -> Obsv.Metrics.with_registry (Obsv.Metrics.create ()) body)
      else body ()
    in
    let reps = if k <= 128 then 60 else 12 in
    for i = 0 to 4 do
      run i
    done;
    let t0 = Unix.gettimeofday () in
    for i = 0 to reps - 1 do
      run i
    done;
    let t1 = Unix.gettimeofday () in
    (t1 -. t0) /. float_of_int reps *. 1e9
  in
  let cases =
    List.map
      (fun k ->
        let off = time_one ~k ~traced:false in
        let on_ = time_one ~k ~traced:true in
        (k, off, on_, on_ /. off))
      [ 64; 1024 ]
  in
  let table =
    Stats.Table.create ~title:"Trace overhead (bucket protocol)"
      ~columns:[ "k"; "disabled ns/run"; "enabled ns/run"; "ratio" ]
  in
  List.iter
    (fun (k, off, on_, ratio) ->
      Stats.Table.add_row table
        [
          string_of_int k;
          Stats.Table.cell_float off;
          Stats.Table.cell_float on_;
          Stats.Table.cell_float ~decimals:3 ratio;
        ])
    cases;
  Stats.Table.print table;
  let json =
    Stats.Json.Obj
      [
        ("bench", Stats.Json.Str "trace_overhead");
        ("protocol", Stats.Json.Str "bucket");
        ("seed", Stats.Json.Int seed);
        ( "cases",
          Stats.Json.List
            (List.map
               (fun (k, off, on_, ratio) ->
                 Stats.Json.Obj
                   [
                     ("k", Stats.Json.Int k);
                     ("disabled_ns_per_run", Stats.Json.Float off);
                     ("enabled_ns_per_run", Stats.Json.Float on_);
                     ("overhead_ratio", Stats.Json.Float ratio);
                   ])
               cases) );
      ]
  in
  Out_channel.with_open_text out (fun oc ->
      Out_channel.output_string oc (Stats.Json.to_string_pretty json);
      Out_channel.output_char oc '\n');
  Printf.printf "wrote %s\n" out

let run () =
  print_endline "Micro-benchmarks (Bechamel, monotonic clock, ns/run):";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let raw =
    List.fold_left
      (fun acc test ->
        let results = Benchmark.all cfg instances (Test.make_grouped ~name:"" [ test ]) in
        Hashtbl.iter (fun name result -> Hashtbl.replace acc name result) results;
        acc)
      (Hashtbl.create 16) (tests ())
  in
  let analyzed = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> (name, ns) :: acc
        | _ -> (name, nan) :: acc)
      analyzed []
    |> List.sort compare
  in
  let table = Stats.Table.create ~title:"Micro (time per run)" ~columns:[ "benchmark"; "ns/run" ] in
  List.iter
    (fun (name, ns) -> Stats.Table.add_row table [ name; Stats.Table.cell_float ns ])
    rows;
  Stats.Table.print table
