(* Chaos campaign harness entry point.

   Drives seeded session-layer campaigns (corruption storms, stall bursts,
   flapping links, mid-session crash/resume) per (protocol x campaign)
   cell, prints the summary table, emits the JSON report, and fails if any
   cell violates the chaos invariant: outcomes partition the trials, zero
   wrong intersections, every exercised resume byte-identical.

     dune exec bench/chaos.exe                     # full matrix (200 trials/cell)
     dune exec bench/chaos.exe -- --smoke          # seconds-scale CI configuration
     dune exec bench/chaos.exe -- --trials 50 --k 32 --out BENCH_chaos.json

   The report is reproducible: the same flags produce the identical JSON,
   bit for bit (the reproduce field of the report quotes the command). *)

open Cmdliner

let run smoke seed trials k universe_bits overlap deadline rung_attempts check_bits out
    json_only domains telemetry_out =
  let base = if smoke then Workload.Chaos.smoke else Workload.Chaos.default in
  let override v = function Some v' -> v' | None -> v in
  let config =
    {
      base with
      Workload.Chaos.seed = override base.Workload.Chaos.seed seed;
      trials = override base.Workload.Chaos.trials trials;
      k = override base.Workload.Chaos.k k;
      universe_bits = override base.Workload.Chaos.universe_bits universe_bits;
      overlap =
        (match overlap with
        | Some o -> o
        | None -> (
            match k with Some k -> k / 2 | None -> base.Workload.Chaos.overlap));
      deadline_bits = override base.Workload.Chaos.deadline_bits deadline;
      rung_attempts = override base.Workload.Chaos.rung_attempts rung_attempts;
      check_bits0 = override base.Workload.Chaos.check_bits0 check_bits;
    }
  in
  let reproduce =
    Printf.sprintf "dune exec bench/chaos.exe --%s --seed %d --trials %d --k %d --overlap %d"
      (if smoke then " --smoke" else "")
      config.Workload.Chaos.seed config.Workload.Chaos.trials config.Workload.Chaos.k
      config.Workload.Chaos.overlap
  in
  let sink = match telemetry_out with None -> None | Some _ -> Some (Workload.Telemetry.create_sink ()) in
  let report = Workload.Chaos.run ?domains ?sink config in
  (match (telemetry_out, sink) with
  | Some path, Some sink ->
      let oc = open_out path in
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (Workload.Telemetry.jsonl sink);
      close_out oc;
      if not json_only then Printf.printf "telemetry stream written to %s\n" path
  | _ -> ());
  if not json_only then print_string (Workload.Chaos.summary report);
  let json = Stats.Json.to_string_pretty (Workload.Chaos.to_json ~reproduce report) in
  (match out with
  | None -> if json_only then print_endline json
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      if not json_only then Printf.printf "JSON report written to %s\n" path);
  match Workload.Chaos.invariant_violations report with
  | [] ->
      if not json_only then print_endline "CHAOS_INVARIANT_OK";
      0
  | violations ->
      List.iter (Printf.eprintf "chaos invariant violated: %s\n") violations;
      1

let some_int names docv doc = Arg.(value & opt (some int) None & info names ~docv ~doc)

let cmd =
  let smoke = Arg.(value & flag & info [ "smoke" ] ~doc:"Seconds-scale CI configuration.") in
  let seed = some_int [ "seed" ] "SEED" "Root seed (default 2014)." in
  let trials = some_int [ "trials" ] "N" "Trials per (protocol x campaign) cell." in
  let k = some_int [ "k" ] "K" "Input set size (overlap defaults to K/2)." in
  let universe_bits = some_int [ "universe-bits" ] "B" "Universe size 2^B." in
  let overlap = some_int [ "overlap" ] "O" "Planted intersection size." in
  let deadline = some_int [ "deadline" ] "BITS" "Session event-time budget." in
  let rung_attempts = some_int [ "rung-attempts" ] "A" "Attempts per ladder rung." in
  let check_bits = some_int [ "check-bits" ] "C" "Initial equality-check width." in
  let out = Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report here.") in
  let json_only = Arg.(value & flag & info [ "json" ] ~doc:"Print only the JSON report.") in
  let domains =
    some_int [ "domains" ]
      "D" "Engine worker domains (default: one per core; the report is identical for any value)."
  in
  let telemetry_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Write the fleet-telemetry JSONL stream (snapshots, rates, post-mortems) here; also \
             enables per-session flight recorders.")
  in
  Cmd.v
    (Cmd.info "chaos" ~doc:"Run chaos campaigns against the session robustness layer.")
    Term.(
      const run $ smoke $ seed $ trials $ k $ universe_bits $ overlap $ deadline
      $ rung_attempts $ check_bits $ out $ json_only $ domains $ telemetry_out)

let () = exit (Cmd.eval' cmd)
