(* intersect-lint: static invariant checker for the whole tree.

   Parses every .ml/.mli under lib/, bin/, bench/, and test/ with
   compiler-libs and enforces the repo's determinism, ambient-state,
   phase-registry, domain-hygiene, and interface-coverage conventions
   (rules R1..R5 — see lib/lint/rules.mli and DESIGN.md).

   Exit codes: 0 clean, 1 findings, 2 could not run (bad root or
   malformed lint.allow).  Output is a pure function of the sources, so
   two runs over the same tree are byte-identical. *)

open Cmdliner

let run root json rules =
  if rules then begin
    List.iter (fun (id, descr) -> Printf.printf "%-6s %s\n" id descr) Lint.Rules.catalogue;
    0
  end
  else
    match Lint.Driver.run ~root () with
    | Error msg ->
        prerr_endline ("intersect-lint: " ^ msg);
        2
    | Ok { Lint.Driver.files; findings } ->
        if json then
          print_endline (Stats.Json.to_string (Lint.Finding.report_json ~files findings))
        else begin
          List.iter (fun f -> print_endline (Lint.Finding.to_line f)) findings;
          Printf.printf "intersect-lint: %d file%s scanned, %d finding%s\n" files
            (if files = 1 then "" else "s")
            (List.length findings)
            (if List.length findings = 1 then "" else "s")
        end;
        if findings = [] then 0 else 1

let root_arg =
  Arg.(
    value
    & opt string "."
    & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to lint (contains lib/, bin/, bench/, test/).")

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the machine-readable JSON report.")

let rules_arg =
  Arg.(value & flag & info [ "rules" ] ~doc:"Print the rule catalogue and exit without linting.")

let cmd =
  let doc = "static invariant checker for the intersection codebase" in
  Cmd.v
    (Cmd.info "intersect_lint" ~doc)
    Term.(const run $ root_arg $ json_arg $ rules_arg)

let () = exit (Cmd.eval' cmd)
