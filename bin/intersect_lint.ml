(* intersect-lint: static invariant checker for the whole tree.

   Two passes.  The syntactic pass parses every .ml/.mli under lib/,
   bin/, bench/, and test/ with compiler-libs and enforces the repo's
   determinism, ambient-state, phase-registry, domain-hygiene, and
   interface-coverage conventions (rules R1..R6).  The typed pass — on
   by default — reads the .cmt artifacts dune produced, builds the
   whole-repo call graph, and enforces the semantic families: R7
   determinism taint, R8 metered-transport accounting, R9 cross-domain
   escape, R10 dead phases (see lib/lint/rules.mli and DESIGN.md).

   Exit codes: 0 clean, 1 findings, 2 could not run (bad root,
   malformed lint.allow, or typed pass requested without build
   artifacts).  Output is a pure function of the sources, so two runs
   over the same tree are byte-identical. *)

open Cmdliner

let run root json sarif rules syntactic explain =
  match explain with
  | Some id -> (
      match Lint.Rules.explain id with
      | Some text ->
          Printf.printf "%s\n\n%s\n" id text;
          0
      | None ->
          Printf.eprintf "intersect-lint: unknown rule %S (try --rules)\n" id;
          2)
  | None ->
      if rules then begin
        List.iter (fun (id, descr) -> Printf.printf "%-6s %s\n" id descr) Lint.Rules.catalogue;
        0
      end
      else (
        match Lint.Driver.run ~root ~typed:(not syntactic) () with
        | Error msg ->
            prerr_endline ("intersect-lint: " ^ msg);
            2
        | Ok { Lint.Driver.files; typed_modules; findings } ->
            if sarif then
              print_endline
                (Stats.Json.to_string
                   (Lint.Finding.sarif_json ~rules:Lint.Rules.catalogue ~files ~typed_modules
                      findings))
            else if json then
              print_endline
                (Stats.Json.to_string (Lint.Finding.report_json ~files ~typed_modules findings))
            else begin
              List.iter (fun f -> print_endline (Lint.Finding.to_line f)) findings;
              Printf.printf "intersect-lint: %d file%s scanned, %d typed module%s, %d finding%s\n"
                files
                (if files = 1 then "" else "s")
                typed_modules
                (if typed_modules = 1 then "" else "s")
                (List.length findings)
                (if List.length findings = 1 then "" else "s")
            end;
            if findings = [] then 0 else 1)

let root_arg =
  Arg.(
    value
    & opt string "."
    & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to lint (contains lib/, bin/, bench/, test/).")

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the machine-readable JSON report.")

let sarif_arg =
  Arg.(value & flag & info [ "sarif" ] ~doc:"Emit the report as SARIF 2.1.0 (implies machine output).")

let rules_arg =
  Arg.(value & flag & info [ "rules" ] ~doc:"Print the rule catalogue and exit without linting.")

let syntactic_arg =
  Arg.(
    value
    & flag
    & info [ "syntactic" ]
        ~doc:
          "Skip the typed (cmt-based) pass and run only the syntactic rules R1..R6. The typed \
           pass is on by default; this exists for linting a tree that has not been built.")

let explain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"RULE" ~doc:"Print the long-form rationale for one rule id and exit.")

let cmd =
  let doc = "static invariant checker for the intersection codebase" in
  Cmd.v
    (Cmd.info "intersect_lint" ~doc)
    Term.(const run $ root_arg $ json_arg $ sarif_arg $ rules_arg $ syntactic_arg $ explain_arg)

let () = exit (Cmd.eval' cmd)
