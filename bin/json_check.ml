(* Strict JSON validator over stdin: exits 0 iff the input is one valid
   JSON value (per RFC 8259) followed only by whitespace.  Used by the
   tier-1 smoke to check that `intersect_cli trace` and `intersect_lint
   --json` emit loadable JSON without taking on a parser dependency.

   With [--<mode>], additionally validates against the named schema from
   the shared catalogue in [Workload.Schemas] — the same implementations
   the experiment registry runs inside `intersect_cli experiments
   verify`, so "the artifact passes its json_check mode" means the same
   thing on the command line and in the registry gate.  Modes:
   [--bench-chaos], [--bench-hotpath], [--bench-sweep],
   [--bench-telemetry], [--experiments], [--lint-report],
   [--lint-sarif].

   The cursor lives inside [validate] (not at top level) so the module
   carries no ambient mutable state — intersect-lint rule R2 holds here
   like everywhere else. *)

exception Bad of string

let validate input =
  let len = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          true
      | _ -> false
    do
      ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word = String.iter expect word in
  let string_value () =
    expect '"';
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              loop ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              loop ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some _ ->
          advance ();
          loop ()
    in
    loop ()
  in
  let digits () =
    let n = ref 0 in
    while (match peek () with Some '0' .. '9' -> true | _ -> false) do
      advance ();
      incr n
    done;
    if !n = 0 then fail "expected digit"
  in
  let number_value () =
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "expected number");
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            string_value ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ()
    | Some '"' -> string_value ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number_value ()
    | _ -> fail "expected a JSON value"
  in
  if len = 0 then Error "empty input"
  else begin
    value ();
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing garbage at byte %d" !pos) else Ok ()
  end

let usage () =
  prerr_endline
    (Printf.sprintf "usage: json_check [%s] < input.json"
       (String.concat " | " (List.map (( ^ ) "--") Workload.Schemas.modes)));
  exit 2

let () =
  let mode =
    match Sys.argv with
    | [| _ |] -> None
    | [| _; flag |]
      when String.starts_with ~prefix:"--" flag
           && List.mem (String.sub flag 2 (String.length flag - 2)) Workload.Schemas.modes ->
        Some (String.sub flag 2 (String.length flag - 2))
    | _ -> usage ()
  in
  let input = In_channel.input_all In_channel.stdin in
  match validate input with
  | exception Bad msg ->
      prerr_endline ("json_check: " ^ msg);
      exit 1
  | Error msg ->
      prerr_endline ("json_check: " ^ msg);
      exit 1
  | Ok () -> (
      match mode with
      | None -> exit 0
      | Some mode -> (
          match Workload.Schemas.check ~mode input with
          | Ok () -> exit 0
          | Error msg ->
              prerr_endline ("json_check: " ^ msg);
              exit 1))
