(* Command-line driver for the intersection protocols.

   Examples:
     intersect_cli two --protocol tree -r 3 -k 1024 --overlap 512 --trials 5
     intersect_cli two --protocol trivial -k 256 --universe-bits 40
     intersect_cli multi --players 16 -k 64 --flavor star
     intersect_cli disj -k 128 --overlap 0 *)

open Cmdliner
open Intersect

let protocol_of_name name ~r ~k =
  match name with
  | "trivial" -> Ok Trivial.protocol
  | "full-exchange" -> Ok Trivial.protocol_full_exchange
  | "one-round" -> Ok (One_round_hash.protocol ())
  | "basic" -> Ok (Basic_intersection.protocol ~failure:1e-3)
  | "bucket" -> Ok (Bucket_protocol.protocol ~k ())
  | "tree" -> Ok (Tree_protocol.protocol ~r ~k ())
  | "tree-log-star" -> Ok (Tree_protocol.protocol_log_star ~k ())
  | "verified-tree" -> Ok (Verified.protocol (Tree_protocol.protocol_log_star ~k ()))
  | _ ->
      Error
        (`Msg
          "unknown protocol (try: trivial, full-exchange, one-round, basic, bucket, tree, \
           tree-log-star, verified-tree)")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
let k_arg = Arg.(value & opt int 1024 & info [ "k"; "set-size" ] ~docv:"K" ~doc:"Set-size bound.")

let universe_bits_arg =
  Arg.(value & opt int 30 & info [ "universe-bits" ] ~docv:"B" ~doc:"Universe size 2^B.")

let overlap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "overlap" ] ~docv:"O" ~doc:"Planted intersection size (default k/2).")

let trials_arg = Arg.(value & opt int 3 & info [ "trials" ] ~docv:"N" ~doc:"Number of trials.")

(* Message-level trace of one tree-protocol run (the protocol the trace
   mode drives; the others hide their sessions behind Protocol.run). *)
let print_trace ~r ~k ~universe ~overlap ~seed =
  let rng = Prng.Rng.with_label (Prng.Rng.of_int seed) "cli-trace" in
  let pair =
    Workload.Setgen.pair_with_overlap
      (Prng.Rng.with_label rng "workload")
      ~universe ~size_s:k ~size_t:k ~overlap
  in
  let results, cost, trace =
    Commsim.Network.run_traced
      [|
        (fun ep ->
          Tree_protocol.run_party `Alice rng ~universe ~r ~k
            (Commsim.Chan.of_endpoint ep ~peer:1)
            pair.Workload.Setgen.s);
        (fun ep ->
          Tree_protocol.run_party `Bob rng ~universe ~r ~k
            (Commsim.Chan.of_endpoint ep ~peer:0)
            pair.Workload.Setgen.t);
      |]
  in
  Printf.printf "message trace (tree r=%d, k=%d):\n" r k;
  List.iteri
    (fun i entry ->
      Printf.printf "  #%-3d %s  round %d  %6d bits\n" (i + 1)
        (if entry.Commsim.Network.from_ = 0 then "A->B" else "B->A")
        entry.Commsim.Network.depth entry.Commsim.Network.bits)
    trace;
  Format.printf "total: %a; |result| = %d@." Commsim.Cost.pp cost (Iset.cardinal results.(0))

let two_cmd =
  let protocol_arg =
    Arg.(value & opt string "tree-log-star" & info [ "protocol" ] ~docv:"P" ~doc:"Protocol name.")
  in
  let r_arg = Arg.(value & opt int 3 & info [ "r"; "stages" ] ~docv:"R" ~doc:"Stage budget for tree.") in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the per-message trace of one tree-protocol run.")
  in
  let run name r k universe_bits overlap trials seed trace =
    if trace then begin
      print_trace ~r ~k ~universe:(1 lsl universe_bits)
        ~overlap:(Option.value overlap ~default:(k / 2))
        ~seed;
      0
    end
    else match protocol_of_name name ~r ~k with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok protocol ->
        let universe = 1 lsl universe_bits in
        let overlap = Option.value overlap ~default:(k / 2) in
        Printf.printf "protocol=%s k=%d universe=2^%d overlap=%d trials=%d\n%!"
          protocol.Protocol.name k universe_bits overlap trials;
        let exact = ref 0 in
        for trial = 1 to trials do
          let rng = Prng.Rng.with_label (Prng.Rng.of_int (seed + trial)) "cli" in
          let pair =
            Workload.Setgen.pair_with_overlap
              (Prng.Rng.with_label rng "workload")
              ~universe ~size_s:k ~size_t:k ~overlap
          in
          let outcome = protocol.Protocol.run rng ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t in
          let ok = Protocol.exact outcome ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t in
          if ok then incr exact;
          Format.printf "  trial %d: %a  |result|=%d  %s@." trial Commsim.Cost.pp
            outcome.Protocol.cost
            (Iset.cardinal outcome.Protocol.alice)
            (if ok then "exact" else "INEXACT")
        done;
        Printf.printf "exact: %d/%d\n" !exact trials;
        0
  in
  Cmd.v
    (Cmd.info "two" ~doc:"Run a two-party intersection protocol on generated sets.")
    Term.(
      const run $ protocol_arg $ r_arg $ k_arg $ universe_bits_arg $ overlap_arg $ trials_arg
      $ seed_arg $ trace_arg)

let multi_cmd =
  let players_arg =
    Arg.(value & opt int 8 & info [ "players" ] ~docv:"M" ~doc:"Number of players.")
  in
  let flavor_arg =
    Arg.(
      value
      & opt (enum [ ("star", `Star); ("tournament", `Tournament) ]) `Star
      & info [ "flavor" ] ~docv:"F" ~doc:"star (Cor 4.1) or tournament (Cor 4.2).")
  in
  let core_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "core" ] ~docv:"C" ~doc:"Size of the planted common core (default k/4).")
  in
  let run players flavor k universe_bits core seed =
    let universe = 1 lsl universe_bits in
    let core = Option.value core ~default:(k / 4) in
    let rng = Prng.Rng.of_int seed in
    let sets =
      Workload.Setgen.family_with_core
        (Prng.Rng.with_label rng "workload")
        ~universe ~players ~size:k ~core
    in
    let result, cost =
      match flavor with
      | `Star -> Multiparty.Star.run (Prng.Rng.with_label rng "star") ~universe ~k sets
      | `Tournament -> Multiparty.Tournament.run (Prng.Rng.with_label rng "tournament") ~universe ~k sets
    in
    let truth = Iset.inter_many (Array.to_list sets) in
    Format.printf "m=%d k=%d core=%d: %a@." players k core Commsim.Cost.pp cost;
    Printf.printf "avg bits/player %.0f, busiest player %d bits\n"
      (Commsim.Cost.avg_player_bits cost)
      (Commsim.Cost.max_player_bits cost);
    Printf.printf "result %s (|intersection| = %d)\n"
      (if Iset.equal result truth then "exact" else "INEXACT")
      (Iset.cardinal result);
    let per_player =
      Stats.Table.create ~title:"per-player" ~columns:Commsim.Cost.breakdown_columns
    in
    List.iter (Stats.Table.add_row per_player) (Commsim.Cost.breakdown_rows cost);
    Stats.Table.print per_player;
    0
  in
  Cmd.v
    (Cmd.info "multi" ~doc:"Run a multi-party intersection protocol.")
    Term.(const run $ players_arg $ flavor_arg $ k_arg $ universe_bits_arg $ core_arg $ seed_arg)

let disj_cmd =
  let bits_arg =
    Arg.(value & opt int 8 & info [ "bits-per-message" ] ~docv:"B" ~doc:"HW density knob.")
  in
  let run k universe_bits overlap bits seed =
    let universe = 1 lsl universe_bits in
    let overlap = Option.value overlap ~default:0 in
    let rng = Prng.Rng.of_int seed in
    let pair =
      Workload.Setgen.pair_with_overlap
        (Prng.Rng.with_label rng "workload")
        ~universe ~size_s:k ~size_t:k ~overlap
    in
    let outcome =
      Disjointness.hw ~bits_per_message:bits
        (Prng.Rng.with_label rng "disj")
        ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t
    in
    Format.printf "verdict: %s  %a@."
      (if outcome.Disjointness.disjoint then "disjoint" else "intersecting")
      Commsim.Cost.pp outcome.Disjointness.cost;
    0
  in
  Cmd.v
    (Cmd.info "disj" ~doc:"Run the Hastad-Wigderson-style disjointness baseline.")
    Term.(const run $ k_arg $ universe_bits_arg $ overlap_arg $ bits_arg $ seed_arg)

let similarity_cmd =
  let sketch_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sketch" ] ~docv:"S"
          ~doc:"Also run a bottom-$(docv) min-wise sketch for comparison.")
  in
  let run k universe_bits overlap seed sketch =
    let universe = 1 lsl universe_bits in
    let overlap = Option.value overlap ~default:(k / 3) in
    let rng = Prng.Rng.of_int seed in
    let pair =
      Workload.Setgen.pair_with_overlap
        (Prng.Rng.with_label rng "workload")
        ~universe ~size_s:k ~size_t:k ~overlap
    in
    let result =
      Apps.Similarity.run (Prng.Rng.with_label rng "sim") ~universe pair.Workload.Setgen.s
        pair.Workload.Setgen.t
    in
    Printf.printf "|S cap T| = %d, |S cup T| = %d\n" result.Apps.Similarity.intersection_size
      result.Apps.Similarity.union_size;
    Printf.printf "jaccard = %.4f, hamming = %d, 1-rarity = %.4f, 2-rarity = %.4f\n"
      result.Apps.Similarity.jaccard result.Apps.Similarity.hamming result.Apps.Similarity.rarity1
      result.Apps.Similarity.rarity2;
    Format.printf "exact answer cost: %a@." Commsim.Cost.pp result.Apps.Similarity.cost;
    (match sketch with
    | None -> ()
    | Some sketch_size ->
        let (j, inter), cost =
          Apps.Sketch.exchange
            (Prng.Rng.with_label rng "sketch")
            ~sketch_size pair.Workload.Setgen.s pair.Workload.Setgen.t
        in
        Format.printf "bottom-%d sketch: jaccard ~= %.4f, |S cap T| ~= %.0f, cost %a@."
          sketch_size j inter Commsim.Cost.pp cost);
    0
  in
  Cmd.v
    (Cmd.info "similarity" ~doc:"Exact similarity statistics (optionally vs a min-wise sketch).")
    Term.(const run $ k_arg $ universe_bits_arg $ overlap_arg $ seed_arg $ sketch_arg)

(* ---------- trace / profile: phase-attributed observability ---------- *)

let obsv_protocol_names =
  "trivial, full-exchange, one-round, basic, bucket, tree, tree-log-star, verified-tree, \
   resilient, session, star, tournament"

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
        ~docv:"D"
        ~doc:
          "Engine worker domains (default: one per core).  Results are byte-identical for any \
           value; only wall-clock changes.")

(* Run one seeded workload under a fresh collector + metrics registry.
   Returns the collected events alongside the exact execution cost. *)
let collect_with ~name ~r ~k ~universe_bits ~overlap ~players ~rng =
  let universe = 1 lsl universe_bits in
  let collector = Obsv.Trace.create () in
  let registry = Obsv.Metrics.create () in
  let two_party_pair () =
    Workload.Setgen.pair_with_overlap
      (Prng.Rng.with_label rng "workload")
      ~universe ~size_s:k ~size_t:k
      ~overlap:(Option.value overlap ~default:(k / 2))
  in
  let run () =
    match name with
    | "star" | "tournament" ->
        let core = Option.value overlap ~default:(k / 4) in
        let sets =
          Workload.Setgen.family_with_core
            (Prng.Rng.with_label rng "workload")
            ~universe ~players ~size:k ~core
        in
        let result, cost =
          if name = "star" then
            Multiparty.Star.run (Prng.Rng.with_label rng "star") ~universe ~k sets
          else Multiparty.Tournament.run (Prng.Rng.with_label rng "tournament") ~universe ~k sets
        in
        Ok (cost, Iset.cardinal result)
    | "resilient" ->
        let pair = two_party_pair () in
        let report =
          Resilient.run (Resilient.bucket_base ~k ()) ~plan:Commsim.Faults.clean
            (Prng.Rng.with_label rng "resilient")
            ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t
        in
        List.iter
          (function
            | Resilient.Check_rejected -> prerr_endline "resilient: equality check rejected"
            | Resilient.Channel_lost d -> Printf.eprintf "resilient: channel lost: %s\n" d
            | Resilient.Party_crashed d -> Printf.eprintf "resilient: party crashed: %s\n" d)
          report.Resilient.failures;
        Ok (report.Resilient.cost, Iset.cardinal report.Resilient.result)
    | "session" ->
        (* One full session over a mildly dropping link: exercises the
           ladder (and its session/* spans) end to end. *)
        let pair = two_party_pair () in
        let plan =
          Commsim.Faults.uniform
            ~seed:(Prng.Rng.bits (Prng.Rng.with_label rng "session-plan") ~width:30)
            (Commsim.Faults.dropping 8e-2)
        in
        let cfg =
          {
            (Session.Machine.default ~k ~plan) with
            Session.Machine.universe_bits;
            seed = Prng.Rng.bits (Prng.Rng.with_label rng "session-seed") ~width:30;
          }
        in
        let report =
          Session.Machine.run cfg ~s:pair.Workload.Setgen.s ~t:pair.Workload.Setgen.t
        in
        List.iter
          (fun (kind, detail) ->
            Printf.eprintf "session: attempt failed (%s): %s\n"
              (Session.Machine.kind_name kind) detail)
          report.Session.Machine.failures;
        let size =
          match Session.Machine.result_of report.Session.Machine.outcome with
          | Some result -> Iset.cardinal result
          | None -> 0
        in
        Ok (report.Session.Machine.ledger.Session.Machine.cost, size)
    | name -> begin
        match protocol_of_name name ~r ~k with
        | Error _ -> Error (`Msg ("unknown protocol (try: " ^ obsv_protocol_names ^ ")"))
        | Ok protocol ->
            let pair = two_party_pair () in
            let outcome =
              protocol.Protocol.run rng ~universe pair.Workload.Setgen.s pair.Workload.Setgen.t
            in
            Ok (outcome.Protocol.cost, Iset.cardinal outcome.Protocol.alice)
      end
  in
  match Obsv.Trace.with_collector collector (fun () -> Obsv.Metrics.with_registry registry run) with
  | Error e -> Error e
  | Ok (cost, size) -> Ok (collector, registry, cost, size)

let collect_run ~name ~r ~k ~universe_bits ~overlap ~players ~seed =
  collect_with ~name ~r ~k ~universe_bits ~overlap ~players
    ~rng:(Prng.Rng.with_label (Prng.Rng.of_int seed) "cli-obsv")

let obsv_protocol_arg =
  Arg.(
    value
    & opt string "bucket"
    & info [ "protocol" ] ~docv:"P" ~doc:("Protocol name (one of: " ^ obsv_protocol_names ^ ")."))

let obsv_r_arg =
  Arg.(value & opt int 3 & info [ "r"; "stages" ] ~docv:"R" ~doc:"Stage budget for tree.")

let obsv_players_arg =
  Arg.(value & opt int 8 & info [ "players" ] ~docv:"M" ~doc:"Players (star/tournament only).")

let obsv_k_arg =
  Arg.(value & opt int 64 & info [ "k"; "set-size" ] ~docv:"K" ~doc:"Set-size bound.")

let trace_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
      & info [ "format" ] ~docv:"F"
          ~doc:"chrome (trace_event JSON for chrome://tracing) or jsonl (one event per line).")
  in
  let run name r k universe_bits overlap players seed format =
    match collect_run ~name ~r ~k ~universe_bits ~overlap ~players ~seed with
    | Error (`Msg m) ->
        prerr_endline m;
        1
    | Ok (collector, _registry, _cost, _size) ->
        (match format with
        | `Chrome -> print_endline (Stats.Json.to_string_pretty (Obsv.Export.chrome_trace collector))
        | `Jsonl -> List.iter print_endline (Obsv.Export.jsonl collector));
        0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one seeded execution of a named protocol with phase tracing enabled and emit the \
          trace (Chrome trace_event JSON by default; load it in chrome://tracing or Perfetto).")
    Term.(
      const run $ obsv_protocol_arg $ obsv_r_arg $ obsv_k_arg $ universe_bits_arg $ overlap_arg
      $ obsv_players_arg $ seed_arg $ format_arg)

let profile_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the breakdown as JSON instead of tables.")
  in
  let profile_trials_arg =
    Arg.(
      value & opt int 1
      & info [ "trials" ] ~docv:"N"
          ~doc:
            "Seeded executions to aggregate (engine seed stream; per-trial costs, phase ledgers \
             and metrics registries are merged in trial order).")
  in
  let run name r k universe_bits overlap players seed json trials domains =
    if trials < 1 then begin
      prerr_endline "profile: --trials must be >= 1";
      2
    end
    else begin
      let stream = Engine.Seed_stream.create ~base:seed ~label:"cli-obsv" in
      let results =
        Engine.Pool.map ?domains ~trials (fun i ->
            collect_with ~name ~r ~k ~universe_bits ~overlap ~players
              ~rng:(Engine.Seed_stream.trial_rng stream (i + 1)))
      in
      match Array.to_list results with
      | Error (`Msg m) :: _ ->
          prerr_endline m;
          1
      | trial_results -> begin
          let oks =
            List.filter_map (function Ok r -> Some r | Error _ -> None) trial_results
          in
          let costs = List.map (fun (_, _, cost, _) -> cost) oks in
          let cost =
            Engine.Merge.costs
              ~players:(Array.length (List.hd costs).Commsim.Cost.players)
              costs
          in
          let registry = Engine.Merge.metrics (List.map (fun (_, reg, _, _) -> reg) oks) in
          let phases =
            Obsv.Export.merge_phases
              (List.map (fun (collector, _, _, _) -> Obsv.Export.phases collector) oks)
          in
          let size = match oks with (_, _, _, s) :: _ -> s | [] -> 0 in
          let phase_bits =
            List.fold_left (fun acc p -> acc + p.Obsv.Export.bits) 0 phases
          in
          let exact = phase_bits = cost.Commsim.Cost.total_bits in
          if json then
            print_endline
              (Stats.Json.to_string_pretty
                 (Stats.Json.Obj
                    [
                      ("protocol", Stats.Json.Str name);
                      ("k", Stats.Json.Int k);
                      ("seed", Stats.Json.Int seed);
                      ("trials", Stats.Json.Int trials);
                      ("total_bits", Stats.Json.Int cost.Commsim.Cost.total_bits);
                      ("messages", Stats.Json.Int cost.Commsim.Cost.messages);
                      ("rounds", Stats.Json.Int cost.Commsim.Cost.rounds);
                      ("result_size", Stats.Json.Int size);
                      ("phase_bits", Stats.Json.Int phase_bits);
                      ("phase_bits_exact", Stats.Json.Bool exact);
                      ("phases", Obsv.Export.phases_json_of phases);
                      ("metrics", Obsv.Metrics.to_json registry);
                    ]))
          else begin
            Printf.printf "profile: protocol=%s k=%d universe=2^%d seed=%d trials=%d\n" name k
              universe_bits seed trials;
            Format.printf "%a; |result| = %d@." Commsim.Cost.pp_breakdown cost size;
            print_newline ();
            Stats.Table.print (Obsv.Export.phase_table_of phases);
            print_newline ();
            let per_player =
              Stats.Table.create ~title:"per-player" ~columns:Commsim.Cost.breakdown_columns
            in
            List.iter (Stats.Table.add_row per_player) (Commsim.Cost.breakdown_rows cost);
            Stats.Table.print per_player;
            print_newline ();
            print_endline "metrics:";
            print_endline (Stats.Json.to_string_pretty (Obsv.Metrics.to_json registry));
            (match Obsv.Metrics.histograms_list registry with
            | [] -> ()
            | hists ->
                print_newline ();
                let qtable =
                  Stats.Table.create ~title:"histogram quantiles (log2-bucket upper bounds)"
                    ~columns:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ]
                in
                List.iter
                  (fun (hname, h) ->
                    let q pm =
                      match Obsv.Metrics.histogram_quantile h ~per_mille:pm with
                      | Some v -> string_of_int v
                      | None -> "-"
                    in
                    Stats.Table.add_row qtable
                      [
                        hname;
                        string_of_int h.Obsv.Metrics.count;
                        q 500;
                        q 900;
                        q 990;
                        string_of_int h.Obsv.Metrics.max_v;
                      ])
                  hists;
                Stats.Table.print qtable);
            print_newline ();
            Printf.printf "phase bits %d %s Cost.total_bits %d\n" phase_bits
              (if exact then "=" else "<>")
              cost.Commsim.Cost.total_bits
          end;
          if exact then 0 else 1
        end
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run seeded executions of a named protocol on the trial engine and print the merged \
          per-phase budget breakdown (bits attributed to the sender's innermost span), the \
          per-player cost table, and the merged metrics registry.  Exits non-zero if the \
          per-phase bits fail to sum to the exact Cost.total_bits.")
    Term.(
      const run $ obsv_protocol_arg $ obsv_r_arg $ obsv_k_arg $ universe_bits_arg $ overlap_arg
      $ obsv_players_arg $ seed_arg $ json_arg $ profile_trials_arg $ domains_arg)

let soak_cmd =
  let smoke_arg = Arg.(value & flag & info [ "smoke" ] ~doc:"Seconds-scale configuration.") in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Print the JSON report instead of the table.") in
  let soak_trials_arg =
    Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc:"Trials per (protocol x plan) cell.")
  in
  let run smoke json trials seed k universe_bits overlap domains =
    let base = if smoke then Workload.Soak.smoke else Workload.Soak.default in
    let config =
      {
        base with
        Workload.Soak.seed;
        trials = Option.value trials ~default:base.Workload.Soak.trials;
        k;
        universe_bits;
        overlap = Option.value overlap ~default:(k / 2);
      }
    in
    let report = Workload.Soak.run ?domains config in
    if json then print_endline (Stats.Json.to_string_pretty (Workload.Soak.to_json report))
    else print_string (Workload.Soak.summary report);
    let bad = List.filter (fun c -> not c.Workload.Soak.within_bound) report.Workload.Soak.cells in
    List.iter
      (fun c ->
        Printf.eprintf "soak: %s/%s exceeded its error bound%s\n" c.Workload.Soak.protocol
          c.Workload.Soak.plan
          (match c.Workload.Soak.first_failure with
          | None -> ""
          | Some d -> Printf.sprintf " (first carried failure: %s)" d))
      bad;
    if bad = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Soak the resilient wrapper against adversarial channels (bench/soak.exe is the full \
          harness; this is the quick in-CLI view).")
    Term.(
      const run $ smoke_arg $ json_arg $ soak_trials_arg
      $ Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
      $ Arg.(value & opt int 16 & info [ "k"; "set-size" ] ~docv:"K" ~doc:"Set-size bound.")
      $ Arg.(value & opt int 20 & info [ "universe-bits" ] ~docv:"B" ~doc:"Universe size 2^B.")
      $ overlap_arg $ domains_arg)

let chaos_cmd =
  let smoke_arg = Arg.(value & flag & info [ "smoke" ] ~doc:"Seconds-scale configuration.") in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Print the JSON report instead of the table.") in
  let chaos_trials_arg =
    Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc:"Trials per (protocol x campaign) cell.")
  in
  let run smoke json trials seed k universe_bits overlap domains =
    let base = if smoke then Workload.Chaos.smoke else Workload.Chaos.default in
    let config =
      {
        base with
        Workload.Chaos.seed;
        trials = Option.value trials ~default:base.Workload.Chaos.trials;
        k;
        universe_bits;
        overlap = Option.value overlap ~default:(k / 2);
      }
    in
    let report = Workload.Chaos.run ?domains config in
    if json then print_endline (Stats.Json.to_string_pretty (Workload.Chaos.to_json report))
    else print_string (Workload.Chaos.summary report);
    match Workload.Chaos.invariant_violations report with
    | [] -> 0
    | violations ->
        List.iter (Printf.eprintf "chaos invariant violated: %s\n") violations;
        1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run seeded chaos campaigns (corruption storms, stall bursts, mid-session \
          crash/resume) against the session robustness layer and check the chaos invariant \
          (bench/chaos.exe is the full harness; this is the quick in-CLI view).")
    Term.(
      const run $ smoke_arg $ json_arg $ chaos_trials_arg
      $ Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
      $ Arg.(value & opt int 16 & info [ "k"; "set-size" ] ~docv:"K" ~doc:"Set-size bound.")
      $ Arg.(value & opt int 20 & info [ "universe-bits" ] ~docv:"B" ~doc:"Universe size 2^B.")
      $ overlap_arg $ domains_arg)

(* ---------- health / top: fleet telemetry over a chaos campaign ---------- *)

(* Both fleet views drive the chaos matrix with a telemetry sink.  The
   deadline-squeeze campaign is excluded by default: it exists to force
   failed-safe outcomes, which would make every default health check red.
   --all-campaigns puts it back for deliberate SLO-violation drills. *)
let fleet_config ~smoke ~trials ~seed ~k ~universe_bits ~overlap ~all_campaigns =
  let base = if smoke then Workload.Chaos.smoke else Workload.Chaos.default in
  let campaigns =
    if all_campaigns then base.Workload.Chaos.campaigns
    else List.filter (fun (name, _) -> name <> "deadline-squeeze") base.Workload.Chaos.campaigns
  in
  {
    base with
    Workload.Chaos.seed;
    trials = Option.value trials ~default:base.Workload.Chaos.trials;
    k;
    universe_bits;
    overlap = Option.value overlap ~default:(k / 2);
    campaigns;
  }

let write_telemetry path sink =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun line ->
          Out_channel.output_string oc line;
          Out_channel.output_char oc '\n')
        (Workload.Telemetry.jsonl sink));
  Printf.eprintf "telemetry stream written to %s\n" path

let fleet_smoke_arg = Arg.(value & flag & info [ "smoke" ] ~doc:"Seconds-scale configuration.")

let fleet_trials_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "trials" ] ~docv:"N" ~doc:"Trials per (protocol x campaign) cell.")

let fleet_seed_arg = Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let fleet_k_arg =
  Arg.(value & opt int 16 & info [ "k"; "set-size" ] ~docv:"K" ~doc:"Set-size bound.")

let fleet_universe_arg =
  Arg.(value & opt int 20 & info [ "universe-bits" ] ~docv:"B" ~doc:"Universe size 2^B.")

let all_campaigns_arg =
  Arg.(
    value & flag
    & info [ "all-campaigns" ]
        ~doc:
          "Include the deadline-squeeze campaign (deliberately drives failed-safe sessions, so \
           expect a red failed-safe-rate verdict).")

let telemetry_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-out" ] ~docv:"FILE"
        ~doc:"Write the JSONL telemetry stream (snapshots, rates, post-mortems) to $(docv).")

let slos_term =
  let some_pm names doc = Arg.(value & opt (some int) None & info names ~docv:"PM" ~doc) in
  let mk failed degraded burn =
    let d = Obsv.Health.default_slos in
    {
      Obsv.Health.max_failed_safe_per_mille =
        Option.value failed ~default:d.Obsv.Health.max_failed_safe_per_mille;
      max_degraded_per_mille =
        Option.value degraded ~default:d.Obsv.Health.max_degraded_per_mille;
      max_p99_burn_per_mille = Option.value burn ~default:d.Obsv.Health.max_p99_burn_per_mille;
    }
  in
  Term.(
    const mk
    $ some_pm [ "max-failed-safe" ] "Failed-safe rate SLO in per-mille (default 50)."
    $ some_pm [ "max-degraded" ] "Degraded (fallback) rate SLO in per-mille (default 250)."
    $ some_pm [ "max-p99-burn" ]
        "p99 deadline-burn SLO in per-mille of the session deadline (default 900).")

let health_verdict ~violations (h : Obsv.Health.report) =
  List.iter (Printf.eprintf "chaos invariant violated: %s\n") violations;
  List.iter
    (fun (v : Obsv.Health.verdict) ->
      if not v.Obsv.Health.ok then
        Printf.eprintf "health: SLO %s violated: %s\n" v.Obsv.Health.slo v.Obsv.Health.detail)
    h.Obsv.Health.verdicts;
  if h.Obsv.Health.ok && violations = [] then 0 else 1

let health_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the health report as JSON instead of the table.")
  in
  let run smoke json trials seed k universe_bits overlap all_campaigns slos telemetry_out domains =
    let config = fleet_config ~smoke ~trials ~seed ~k ~universe_bits ~overlap ~all_campaigns in
    let sink = Workload.Telemetry.create_sink () in
    let report = Workload.Chaos.run ?domains ~sink config in
    let violations = Workload.Chaos.invariant_violations report in
    (match telemetry_out with None -> () | Some path -> write_telemetry path sink);
    match Workload.Telemetry.health ~slos sink with
    | None ->
        prerr_endline "health: campaign recorded no snapshots";
        1
    | Some h ->
        if json then
          print_endline
            (Stats.Json.to_string_pretty
               (Stats.Json.Obj
                  [
                    ("health", Obsv.Health.to_json h);
                    ("slos", Obsv.Health.slos_json slos);
                  ]))
        else begin
          Stats.Table.print (Obsv.Health.table h);
          Printf.printf "fleet: %d sessions over %d cells; verdict %s\n"
            h.Obsv.Health.sessions
            (List.length report.Workload.Chaos.cells)
            (if h.Obsv.Health.ok && violations = [] then "HEALTHY" else "UNHEALTHY")
        end;
        health_verdict ~violations h
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run the chaos campaign matrix with fleet telemetry enabled and score the final \
          snapshot against the declared SLOs (wrong-answer rate is hard-wired to zero; \
          failed-safe / degraded / p99-deadline-burn rates take per-mille thresholds).  Exits \
          non-zero on any SLO or chaos-invariant violation.")
    Term.(
      const run $ fleet_smoke_arg $ json_arg $ fleet_trials_arg $ fleet_seed_arg $ fleet_k_arg
      $ fleet_universe_arg $ overlap_arg $ all_campaigns_arg $ slos_term $ telemetry_out_arg
      $ domains_arg)

let top_cmd =
  let no_ansi_arg =
    Arg.(
      value & flag
      & info [ "no-ansi" ]
          ~doc:"Append frames instead of redrawing in place (for logs and dumb terminals).")
  in
  let render_frame ~no_ansi ~idx ~total ~protocol ~campaign_name sink (cell : Workload.Chaos.cell)
      =
    if not no_ansi then print_string "\027[H\027[2J";
    Printf.printf "intersect fleet top — cell %d/%d: %s / %s\n" idx total protocol campaign_name;
    (match Workload.Telemetry.last_snapshot sink with
    | None -> ()
    | Some snap ->
        let c name = Obsv.Snapshot.counter snap name in
        Printf.printf "fleet   sessions %-6d completed %-6d degraded %-6d failed_safe %-6d wrong %d\n"
          (c Obsv.Health.k_sessions)
          (c (Obsv.Health.k_outcome "completed"))
          (c (Obsv.Health.k_outcome "degraded"))
          (c (Obsv.Health.k_outcome "failed_safe"))
          (c Obsv.Health.k_wrong);
        Printf.printf "        attempts %-6d resumes %-7d post-mortems %d\n"
          (c Obsv.Health.k_attempts) (c Obsv.Health.k_resumes)
          (List.length (Workload.Telemetry.postmortems sink));
        let sketch_line label name =
          match Obsv.Snapshot.sketch snap name with
          | None -> ()
          | Some s ->
              Printf.printf "%s p50 %-7d p90 %-7d p99 %-7d max %d\n" label
                s.Obsv.Snapshot.s_p50 s.Obsv.Snapshot.s_p90 s.Obsv.Snapshot.s_p99
                s.Obsv.Snapshot.s_max
        in
        sketch_line "spent bits   " Obsv.Health.k_spent_bits;
        sketch_line "backoff ticks" Obsv.Health.k_backoff_ticks);
    Printf.printf "cell    %d trials: %d completed, %d degraded, %d failed-safe, %d resumed\n%!"
      cell.Workload.Chaos.trials cell.Workload.Chaos.completed cell.Workload.Chaos.degraded
      cell.Workload.Chaos.failed_safe cell.Workload.Chaos.resumed
  in
  let run smoke trials seed k universe_bits overlap all_campaigns no_ansi slos telemetry_out
      domains =
    let config = fleet_config ~smoke ~trials ~seed ~k ~universe_bits ~overlap ~all_campaigns in
    let plan = Workload.Chaos.cells_of config in
    let total = List.length plan in
    let sink = Workload.Telemetry.create_sink () in
    let cells =
      List.mapi
        (fun i (protocol, campaign_name, camp) ->
          let cell =
            Workload.Chaos.run_cell ?domains ~sink config camp ~protocol ~campaign_name
          in
          render_frame ~no_ansi ~idx:(i + 1) ~total ~protocol ~campaign_name sink cell;
          cell)
        plan
    in
    let report = { Workload.Chaos.config; cells } in
    let violations = Workload.Chaos.invariant_violations report in
    (match telemetry_out with None -> () | Some path -> write_telemetry path sink);
    match Workload.Telemetry.health ~slos sink with
    | None ->
        prerr_endline "top: campaign recorded no snapshots";
        1
    | Some h ->
        print_newline ();
        Stats.Table.print (Obsv.Health.table h);
        health_verdict ~violations h
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live top-style view of a chaos campaign: runs the matrix cell by cell through the \
          fleet-telemetry sink and redraws a frame per cell (sessions, outcome taxonomy, \
          spend-sketch percentiles), finishing with the SLO health table.  Frames are \
          event-time snapshots, so the stream is deterministic for a fixed seed.")
    Term.(
      const run $ fleet_smoke_arg $ fleet_trials_arg $ fleet_seed_arg $ fleet_k_arg
      $ fleet_universe_arg $ overlap_arg $ all_campaigns_arg $ no_ansi_arg $ slos_term
      $ telemetry_out_arg $ domains_arg)

let bench_regress_cmd =
  let smoke_arg =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Seconds-scale subset (k = 64 only, 2 trials).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the full JSON report to stdout.")
  in
  let deterministic_arg =
    Arg.(
      value & flag
      & info [ "deterministic-json" ]
          ~doc:
            "Print only the seeded fields (bits, messages, rounds) as JSON; two runs of the \
             same config must be byte-identical.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the full JSON report (the BENCH_hotpath.json shape).")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Compare against a committed BENCH_hotpath.json: deterministic fields must match \
             exactly; timings within tolerance.  Exit 1 on violation.")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 0.5
      & info [ "tolerance" ] ~docv:"F"
          ~doc:"Allowed fractional timing regression vs the baseline (0.5 allows 1.5x).")
  in
  let trials_arg =
    Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc:"Seeded trials per cell.")
  in
  let ks_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "k"; "set-size" ] ~docv:"K,K,..." ~doc:"Set-size sweep (comma-separated).")
  in
  let protocols_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "protocols" ] ~docv:"P,P,..."
          ~doc:
            ("Protocols to bench, comma-separated (default: all of "
            ^ String.concat ", " Workload.Regress.protocol_names
            ^ ")."))
  in
  let run smoke json deterministic out baseline tolerance seed trials ks protocols =
    let base = if smoke then Workload.Regress.smoke else Workload.Regress.default in
    let config =
      {
        base with
        Workload.Regress.seed;
        trials = Option.value trials ~default:base.Workload.Regress.trials;
        ks = Option.value ks ~default:base.Workload.Regress.ks;
        protocols = Option.value protocols ~default:base.Workload.Regress.protocols;
      }
    in
    match Workload.Regress.run config with
    | exception Invalid_argument m ->
        prerr_endline ("bench-regress: " ^ m);
        2
    | report -> (
        if deterministic then
          print_endline
            (Stats.Json.to_string_pretty (Workload.Regress.deterministic_json report))
        else if json then
          print_endline (Stats.Json.to_string_pretty (Workload.Regress.to_json report))
        else print_string (Workload.Regress.summary report);
        (match out with
        | None -> ()
        | Some path ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc
                  (Stats.Json.to_string_pretty (Workload.Regress.to_json report));
                Out_channel.output_char oc '\n');
            Printf.eprintf "wrote %s\n" path);
        match baseline with
        | None -> 0
        | Some path -> (
            let contents = In_channel.with_open_text path In_channel.input_all in
            match Stats.Json.of_string contents with
            | Error e ->
                Printf.eprintf "bench-regress: cannot parse %s: %s\n" path e;
                2
            | Ok bjson -> (
                match Workload.Regress.compare_baseline ~tolerance report bjson with
                | Error e ->
                    Printf.eprintf "bench-regress: %s\n" e;
                    2
                | Ok (compared, []) ->
                    Printf.eprintf
                      "baseline check: %d cell(s) compared, all within tolerance %.2f\n" compared
                      tolerance;
                    0
                | Ok (compared, violations) ->
                    Printf.eprintf "baseline check: %d cell(s) compared, %d violation(s):\n"
                      compared (List.length violations);
                    List.iter
                      (fun v -> Printf.eprintf "  %s\n" (Workload.Regress.violation_message v))
                      violations;
                    1)))
  in
  Cmd.v
    (Cmd.info "bench-regress"
       ~doc:
         "Hot-path performance regression bench: seeded end-to-end runs of every registered \
          protocol measuring ns/run and allocation bytes/run, with exact (deterministic) bit, \
          message and round counts.  With --baseline, enforces exact transcript fields and \
          tolerance-bounded timings against a committed BENCH_hotpath.json.")
    Term.(
      const run $ smoke_arg $ json_arg $ deterministic_arg $ out_arg $ baseline_arg
      $ tolerance_arg
      $ Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
      $ trials_arg $ ks_arg $ protocols_arg)

let conform_cmd =
  let smoke_arg =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Seconds-scale configuration (k = 16, 25 trials).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the JSON report instead of the table.")
  in
  let trials_arg =
    Arg.(
      value & opt (some int) None
      & info [ "trials" ] ~docv:"N" ~doc:"Trials per (protocol x k) cell.")
  in
  let ks_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "k"; "set-size" ] ~docv:"K,K,..." ~doc:"Set-size sweep (comma-separated).")
  in
  let protocols_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "protocols" ] ~docv:"P,P,..."
          ~doc:
            ("Statements to check, comma-separated (default: all of "
            ^ String.concat ", " Workload.Conform.entry_names
            ^ ")."))
  in
  let run smoke json trials seed ks protocols domains =
    let base = if smoke then Workload.Conform.smoke else Workload.Conform.default in
    let config =
      {
        base with
        Workload.Conform.seed;
        trials = Option.value trials ~default:base.Workload.Conform.trials;
        ks = Option.value ks ~default:base.Workload.Conform.ks;
        protocols = Option.value protocols ~default:base.Workload.Conform.protocols;
      }
    in
    match Workload.Conform.run ?domains config with
    | exception Invalid_argument m ->
        prerr_endline ("conform: " ^ m);
        2
    | report ->
        if json then
          print_endline
            (Stats.Json.to_string_pretty
               (Workload.Conform.to_json ~reproduce:"intersect_cli conform" report))
        else print_string (Workload.Conform.summary report);
        if report.Workload.Conform.pass then 0 else 1
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Theorem-conformance tier: run seeded trial sweeps on the engine and assert every \
          protocol stays inside its paper envelope (rounds budget per trial, constant-factor \
          bits envelope on the mean, Wilson-bounded error rate).  Exits non-zero on any \
          envelope violation.")
    Term.(
      const run $ smoke_arg $ json_arg $ trials_arg
      $ Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
      $ ks_arg $ protocols_arg $ domains_arg)

let sweep_cmd =
  let smoke_arg =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Seconds-scale matrix (3 cells, 1200 trials).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the JSON report instead of the table.")
  in
  let trials_arg =
    Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc:"Trials per matrix cell.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report (the BENCH_sweep.json shape).")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:"Write the fleet-telemetry JSONL stream (per-cell snapshots) here.")
  in
  let run smoke json trials seed out telemetry_out domains =
    let base = if smoke then Workload.Sweep.smoke else Workload.Sweep.default in
    let config =
      {
        base with
        Workload.Sweep.seed;
        trials_per_cell = Option.value trials ~default:base.Workload.Sweep.trials_per_cell;
      }
    in
    let reproduce =
      Printf.sprintf "intersect_cli sweep%s --seed %d --trials %d"
        (if smoke then " --smoke" else "")
        config.Workload.Sweep.seed config.Workload.Sweep.trials_per_cell
    in
    let sink =
      match telemetry_out with None -> None | Some _ -> Some (Workload.Telemetry.create_sink ())
    in
    match Workload.Sweep.run ?domains ?sink config with
    | exception Invalid_argument m ->
        prerr_endline ("sweep: " ^ m);
        2
    | report ->
        (match (telemetry_out, sink) with
        | Some path, Some sink -> write_telemetry path sink
        | _ -> ());
        if json then
          print_endline (Stats.Json.to_string_pretty (Workload.Sweep.to_json ~reproduce report))
        else print_string (Workload.Sweep.summary report);
        (match out with
        | None -> ()
        | Some path ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc
                  (Stats.Json.to_string_pretty (Workload.Sweep.to_json ~reproduce report));
                Out_channel.output_char oc '\n');
            Printf.eprintf "wrote %s\n" path);
        List.iter
          (fun (c : Workload.Sweep.cell) ->
            if not c.Workload.Sweep.pass then
              Printf.eprintf "sweep: %s/%s k=%d violated its envelope (%d/%d failures)\n"
                c.Workload.Sweep.protocol
                (Option.value c.Workload.Sweep.plan ~default:"clean")
                c.Workload.Sweep.k c.Workload.Sweep.failures c.Workload.Sweep.trials)
          report.Workload.Sweep.cells;
        if report.Workload.Sweep.pass then 0 else 1
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Mega-sweep conformance matrix: stream 10^6+ seeded trials over protocol x k x \
          fault-plan cells through the trial engine, gating each cell's failure count against \
          the paper's 1/poly(k) envelope (Wilson 95% bounds) or the resilient wrapper's \
          rare-event bound.  Byte-identical report at every --domains value.  Exits non-zero \
          on any envelope violation (bench/sweep.exe is the full harness; this is the in-CLI \
          runner).")
    Term.(
      const run $ smoke_arg $ json_arg $ trials_arg
      $ Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
      $ out_arg $ telemetry_arg $ domains_arg)

(* The hypothesis-driven experiment registry (experiments/NNN-slug.md;
   see experiments/README.md).  [verify] receives the group's own
   subcommand-name list so a renamed subcommand invalidates every entry
   whose reproduce/smoke command still quotes the old name. *)
let experiments_cmd ~cli_subcommands =
  let module R = Workload.Registry in
  let root_arg =
    Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc:"Repository root.")
  in
  let print_violations (violations : R.violation list) =
    List.iter
      (fun (v : R.violation) ->
        Printf.eprintf "experiments: %s: %s\n"
          (Option.value v.R.file ~default:"(registry)")
          v.R.what)
      violations
  in
  let load_checked root =
    let registry, violations = R.load ~root in
    print_violations violations;
    (registry, violations = [])
  in
  let list_cmd =
    let run root =
      let registry, ok = load_checked root in
      Stats.Table.print (R.table registry);
      let draft, running, complete, superseded = R.census registry in
      Printf.printf "%d entries: %d draft, %d running, %d complete, %d superseded\n"
        (List.length registry.R.entries) draft running complete superseded;
      if ok then 0 else 1
    in
    Cmd.v
      (Cmd.info "list" ~doc:"Status table of every registered experiment.")
      Term.(const run $ root_arg)
  in
  let show_cmd =
    let id_arg =
      Arg.(required & pos 0 (some int) None & info [] ~docv:"ID" ~doc:"Experiment id.")
    in
    let run root id =
      let registry, _ = R.load ~root in
      match List.find_opt (fun (e : R.entry) -> e.R.id = id) registry.R.entries with
      | None ->
          Printf.eprintf "experiments: no entry with id %d\n" id;
          2
      | Some e ->
          print_string (R.front_matter_of e);
          print_string e.R.body;
          print_newline ();
          0
    in
    Cmd.v
      (Cmd.info "show" ~doc:"Print one experiment (canonical frontmatter + body).")
      Term.(const run $ root_arg $ id_arg)
  in
  let run_smoke ~what command =
    Printf.eprintf "experiments: regen %s: %s\n" what command;
    flush stderr;
    Sys.command command
  in
  let capture_run command path =
    Sys.command (Printf.sprintf "%s > %s" command (Filename.quote path))
  in
  let regen_smoke registry =
    List.concat_map
      (fun (command, mode, ids) ->
        let what =
          Printf.sprintf "[%s]" (String.concat "," (List.map (Printf.sprintf "%03d") ids))
        in
        match mode with
        | R.Gate | R.No_regen ->
            if run_smoke ~what command = 0 then []
            else [ { R.file = None; what = Printf.sprintf "regen %s failed: %s" what command } ]
        | R.Diff ->
            let a = Filename.temp_file "regen" ".a" and b = Filename.temp_file "regen" ".b" in
            Fun.protect
              ~finally:(fun () ->
                Sys.remove a;
                Sys.remove b)
              (fun () ->
                Printf.eprintf "experiments: regen %s (twice, diffed): %s\n" what command;
                flush stderr;
                if capture_run command a <> 0 || capture_run command b <> 0 then
                  [ { R.file = None; what = Printf.sprintf "regen %s failed: %s" what command } ]
                else
                  let read p = In_channel.with_open_bin p In_channel.input_all in
                  if read a = read b then []
                  else
                    [
                      {
                        R.file = None;
                        what =
                          Printf.sprintf "regen %s not deterministic (two runs differ): %s" what
                            command;
                      };
                    ]))
      (R.regen_plan registry)
  in
  let verify_cmd =
    let regen_arg =
      Arg.(
        value & flag
        & info [ "regen-smoke" ]
            ~doc:
              "Re-execute every Complete entry's smoke command (deduplicated) and enforce its \
               regen mode: exit 0 for gate, byte-identical stdout across two runs for diff.")
    in
    let run root regen =
      let registry, violations = R.load ~root in
      print_violations violations;
      let more = R.verify ~env:(R.repo_env ~root) ~cli_subcommands registry in
      print_violations more;
      let regen_violations = if regen then regen_smoke registry else [] in
      print_violations regen_violations;
      let all = violations @ more @ regen_violations in
      if all = [] then begin
        let _, _, complete, _ = R.census registry in
        Printf.printf "experiments: %d entries verified (%d complete)%s\n"
          (List.length registry.R.entries)
          complete
          (if regen then ", regen smoke green" else "");
        0
      end
      else begin
        Printf.eprintf "experiments: %d violation(s)\n" (List.length all);
        1
      end
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Machine-check the registry: dense ids, live reproduce commands, existing \
            schema-valid artifacts, resolving cross-links.  Exits non-zero on any violation.")
      Term.(const run $ root_arg $ regen_arg)
  in
  let export_cmd =
    let run root =
      let registry, ok = load_checked root in
      if not ok then 1
      else begin
        print_string (R.export registry);
        0
      end
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:
           "Print the experiments.json index (byte-identical across runs; validated by \
            json_check --experiments).")
      Term.(const run $ root_arg)
  in
  Cmd.group
    (Cmd.info "experiments"
       ~doc:
         "The hypothesis-driven experiment registry over experiments/NNN-slug.md (lifecycle \
          Draft | Running | Complete | Superseded; see experiments/README.md).")
    [ list_cmd; show_cmd; verify_cmd; export_cmd ]

let () =
  let doc = "Set-intersection communication protocols (PODC'14 reproduction)." in
  let base =
    [
      two_cmd;
      multi_cmd;
      disj_cmd;
      similarity_cmd;
      soak_cmd;
      chaos_cmd;
      health_cmd;
      top_cmd;
      bench_regress_cmd;
      conform_cmd;
      sweep_cmd;
      trace_cmd;
      profile_cmd;
    ]
  in
  let cli_subcommands = List.sort compare ("experiments" :: List.map Cmd.name base) in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "intersect_cli" ~doc) (base @ [ experiments_cmd ~cli_subcommands ])))
